//! Fault-injection acceptance suite (`--features fault-injection`).
//!
//! Each test arms a distinct probe site, so the process-global registry
//! never races across the parallel test harness:
//!
//! * `refine::start`     — panic mid-refinement → quarantine + recovery
//! * `checkpoint::write` — torn checkpoint → recovery skips to the
//!   previous good file
//! * `session::ingest`   — injected submission rejection
#![cfg(feature = "fault-injection")]

use graphbolt_core::doctest_support::DocRank;
use graphbolt_core::checkpoint::{
    parse_session_file, recover_session, session_file_bytes, write_session_checkpoint,
};
use graphbolt_core::fault::{arm, FaultAction};
use graphbolt_core::{
    run_bsp, CheckpointError, EngineOptions, EngineStats, ExecutionMode, F64Codec, SessionError,
    StreamSession, StreamingEngine,
};
use bytes::Bytes;
use graphbolt_graph::{Edge, GraphBuilder};

fn engine() -> StreamingEngine<DocRank> {
    let g = GraphBuilder::new(6)
        .add_edge(0, 1, 1.0)
        .add_edge(1, 2, 1.0)
        .add_edge(2, 3, 1.0)
        .add_edge(3, 4, 1.0)
        .add_edge(4, 5, 1.0)
        .add_edge(5, 0, 1.0)
        .build();
    let mut e = StreamingEngine::new(g, DocRank, EngineOptions::with_iterations(8));
    e.run_initial();
    e
}

fn scratch_values(engine: &StreamingEngine<DocRank>) -> Vec<f64> {
    run_bsp(
        &DocRank,
        engine.graph(),
        engine.options(),
        ExecutionMode::Full,
        &EngineStats::new(),
    )
    .vals
}

/// Acceptance scenario 1: a panic injected mid-refinement is caught, the
/// offending batch lands in the dead-letter queue, and the next query
/// returns exactly the from-scratch result on the last good snapshot.
#[test]
fn injected_refine_panic_is_quarantined_and_session_keeps_serving() {
    let session = StreamSession::spawn(engine());

    arm("refine::start", FaultAction::Panic, 1);
    session.add(Edge::new(0, 3, 1.0)).unwrap();
    session.flush().unwrap();

    // The poisoned batch must not be part of the served graph...
    let served = session.query().unwrap();

    // ...and the session must still accept and refine later batches.
    session.add(Edge::new(1, 4, 1.0)).unwrap();
    session.flush().unwrap();

    let outcome = session.finish().unwrap();
    assert_eq!(outcome.stats.panics_recovered, 1);
    assert_eq!(outcome.stats.batches_quarantined, 1);
    assert_eq!(outcome.stats.mutations_quarantined, 1);
    assert_eq!(outcome.stats.mutations_applied, 1, "second batch applied");
    assert_eq!(outcome.dead_letters.len(), 1);
    assert!(
        outcome.dead_letters[0].reason.contains("injected fault"),
        "dead letter records the panic message, got: {}",
        outcome.dead_letters[0].reason
    );
    assert_eq!(outcome.dead_letters[0].batch.additions().len(), 1);
    assert!(
        !outcome.engine.graph().has_edge(0, 3),
        "quarantined batch must not mutate the graph"
    );
    assert!(
        outcome.engine.graph().has_edge(1, 4),
        "post-recovery batch must land"
    );

    // The mid-session query served from-scratch-equal values on the last
    // good snapshot (the pre-panic graph: no (0,3), no (1,4) yet).
    let reference = engine();
    let expect = scratch_values(&reference);
    assert_eq!(served.len(), expect.len());
    for (a, b) in served.iter().zip(&expect) {
        assert!(
            (a - b).abs() < 1e-9,
            "recovered values equal from-scratch on last good snapshot"
        );
    }

    // And the final state matches from-scratch on the final graph.
    let expect = scratch_values(&outcome.engine);
    for (a, b) in outcome.engine.values().iter().zip(&expect) {
        assert!((a - b).abs() < 1e-7);
    }
}

/// Acceptance scenario 2: a truncated (torn) checkpoint write is detected
/// at recovery time and the session resumes from the previous good
/// checkpoint.
#[test]
fn truncated_checkpoint_is_skipped_in_favour_of_previous_good_one() {
    let dir = std::env::temp_dir().join("graphbolt-fault-trunc");
    let _ = std::fs::remove_dir_all(&dir);

    let mut e = engine();
    write_session_checkpoint(&dir, &e, 1, &F64Codec, &F64Codec).unwrap();
    let good_values = e.values().to_vec();

    // Checkpoint 2 is torn: the injector cuts the byte stream short.
    let mut batch = graphbolt_graph::MutationBatch::new();
    batch.add(Edge::new(0, 2, 1.0));
    e.apply_batch(&batch).unwrap();
    arm("checkpoint::write", FaultAction::Truncate(64), 1);
    write_session_checkpoint(&dir, &e, 2, &F64Codec, &F64Codec).unwrap();

    // The torn file is detected as damaged...
    let torn = std::fs::read(dir.join("ck-00000000000000000002.gbsf")).unwrap();
    assert_eq!(torn.len(), 64, "injected truncation happened");
    let err = parse_session_file(Bytes::from(torn)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Truncated | CheckpointError::Corrupted),
        "torn checkpoint must not parse, got: {err}"
    );

    // ...and recovery falls back to checkpoint 1.
    let rec = recover_session(&dir, DocRank, *e.options(), &F64Codec, &F64Codec)
        .unwrap()
        .expect("previous good checkpoint exists");
    assert_eq!(rec.seq, 1);
    assert_eq!(rec.skipped, 1);
    assert_eq!(rec.engine.values(), &good_values[..]);
    assert!(
        !rec.engine.graph().has_edge(0, 2),
        "recovered state predates the torn checkpoint"
    );

    // The recovered engine is live: it refines the lost batch again and
    // converges to the same state the original reached.
    let mut recovered = rec.engine;
    let mut batch = graphbolt_graph::MutationBatch::new();
    batch.add(Edge::new(0, 2, 1.0));
    recovered.apply_batch(&batch).unwrap();
    assert_eq!(recovered.values(), e.values());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario 3: an injected ingestion fault surfaces as a typed error and
/// leaves the session usable.
#[test]
fn injected_ingest_error_rejects_one_submission() {
    let session = StreamSession::spawn(engine());
    arm("session::ingest", FaultAction::Error, 1);
    assert_eq!(
        session.try_add(Edge::new(0, 4, 1.0)),
        Err(SessionError::Injected)
    );
    // The plan is exhausted; the session serves normally afterwards.
    session.add(Edge::new(0, 4, 1.0)).unwrap();
    session.flush().unwrap();
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.stats.mutations_applied, 1);
    assert!(outcome.engine.graph().has_edge(0, 4));
}

/// A truncated checkpoint round-trip sanity check that does not touch the
/// injector: cutting the serialized container anywhere must never parse.
#[test]
fn every_prefix_of_a_session_file_is_rejected() {
    let e = engine();
    let full = session_file_bytes(&e, 9, &F64Codec, &F64Codec);
    for cut in [0, 3, 13, full.len() / 2, full.len() - 1] {
        let torn = Bytes::from(full[..cut].to_vec());
        assert!(
            parse_session_file(torn).is_err(),
            "prefix of {cut} bytes must not parse"
        );
    }
}
