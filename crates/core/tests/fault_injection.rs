//! Fault-injection acceptance suite (`--features fault-injection`).
//!
//! Each test arms a distinct probe site, so the process-global registry
//! never races across the parallel test harness:
//!
//! * `refine::start`     — panic mid-refinement → quarantine + recovery
//! * `checkpoint::write` — torn checkpoint → recovery skips to the
//!   previous good file
//! * `session::ingest`   — injected submission rejection
//! * `session::deadline` — queued mutation treated as expired → shed
//! * `admission::admit`  — request shed with a typed RetryAfter
//! * `frontdoor::accept` — accepted connection dropped on the floor
//! * `frontdoor::parse`  — well-formed request rejected as malformed
//!
//! The front-door and session scenarios all end the same way: the faulted
//! request leaves no trace in the session — the final graph and values
//! equal a from-scratch run on exactly the mutations that were *served*.
#![cfg(feature = "fault-injection")]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use graphbolt_core::doctest_support::DocRank;
use graphbolt_core::checkpoint::{
    parse_session_file, recover_session, session_file_bytes, write_session_checkpoint,
};
use graphbolt_core::fault::{arm, FaultAction};
use graphbolt_core::{
    run_bsp, AdmissionConfig, AdmissionController, CheckpointError, ClientClass, EngineOptions,
    EngineStats, ExecutionMode, F64Codec, FrontDoor, FrontDoorConfig, SessionError, StreamSession,
    StreamingEngine,
};
use bytes::Bytes;
use graphbolt_graph::{Edge, GraphBuilder};

fn engine() -> StreamingEngine<DocRank> {
    let g = GraphBuilder::new(6)
        .add_edge(0, 1, 1.0)
        .add_edge(1, 2, 1.0)
        .add_edge(2, 3, 1.0)
        .add_edge(3, 4, 1.0)
        .add_edge(4, 5, 1.0)
        .add_edge(5, 0, 1.0)
        .build();
    let mut e = StreamingEngine::new(g, DocRank, EngineOptions::with_iterations(8));
    e.run_initial();
    e
}

fn scratch_values(engine: &StreamingEngine<DocRank>) -> Vec<f64> {
    run_bsp(
        &DocRank,
        engine.graph(),
        engine.options(),
        ExecutionMode::Full,
        &EngineStats::new(),
    )
    .vals
}

/// Acceptance scenario 1: a panic injected mid-refinement is caught, the
/// offending batch lands in the dead-letter queue, and the next query
/// returns exactly the from-scratch result on the last good snapshot.
#[test]
fn injected_refine_panic_is_quarantined_and_session_keeps_serving() {
    let session = StreamSession::spawn(engine());

    arm("refine::start", FaultAction::Panic, 1);
    session.add(Edge::new(0, 3, 1.0)).unwrap();
    session.flush().unwrap();

    // The poisoned batch must not be part of the served graph...
    let served = session.query().unwrap();

    // ...and the session must still accept and refine later batches.
    session.add(Edge::new(1, 4, 1.0)).unwrap();
    session.flush().unwrap();

    let outcome = session.finish().unwrap();
    assert_eq!(outcome.stats.panics_recovered, 1);
    assert_eq!(outcome.stats.batches_quarantined, 1);
    assert_eq!(outcome.stats.mutations_quarantined, 1);
    assert_eq!(outcome.stats.mutations_applied, 1, "second batch applied");
    assert_eq!(outcome.dead_letters.len(), 1);
    assert!(
        outcome.dead_letters[0].reason.contains("injected fault"),
        "dead letter records the panic message, got: {}",
        outcome.dead_letters[0].reason
    );
    assert_eq!(outcome.dead_letters[0].batch.additions().len(), 1);
    assert!(
        !outcome.engine.graph().has_edge(0, 3),
        "quarantined batch must not mutate the graph"
    );
    assert!(
        outcome.engine.graph().has_edge(1, 4),
        "post-recovery batch must land"
    );

    // The mid-session query served from-scratch-equal values on the last
    // good snapshot (the pre-panic graph: no (0,3), no (1,4) yet).
    let reference = engine();
    let expect = scratch_values(&reference);
    assert_eq!(served.len(), expect.len());
    for (a, b) in served.iter().zip(&expect) {
        assert!(
            (a - b).abs() < 1e-9,
            "recovered values equal from-scratch on last good snapshot"
        );
    }

    // And the final state matches from-scratch on the final graph.
    let expect = scratch_values(&outcome.engine);
    for (a, b) in outcome.engine.values().iter().zip(&expect) {
        assert!((a - b).abs() < 1e-7);
    }
}

/// Acceptance scenario 2: a truncated (torn) checkpoint write is detected
/// at recovery time and the session resumes from the previous good
/// checkpoint.
#[test]
fn truncated_checkpoint_is_skipped_in_favour_of_previous_good_one() {
    let dir = std::env::temp_dir().join("graphbolt-fault-trunc");
    let _ = std::fs::remove_dir_all(&dir);

    let mut e = engine();
    write_session_checkpoint(&dir, &e, 1, &F64Codec, &F64Codec).unwrap();
    let good_values = e.values().to_vec();

    // Checkpoint 2 is torn: the injector cuts the byte stream short.
    let mut batch = graphbolt_graph::MutationBatch::new();
    batch.add(Edge::new(0, 2, 1.0));
    e.apply_batch(&batch).unwrap();
    arm("checkpoint::write", FaultAction::Truncate(64), 1);
    write_session_checkpoint(&dir, &e, 2, &F64Codec, &F64Codec).unwrap();

    // The torn file is detected as damaged...
    let torn = std::fs::read(dir.join("ck-00000000000000000002.gbsf")).unwrap();
    assert_eq!(torn.len(), 64, "injected truncation happened");
    let err = parse_session_file(Bytes::from(torn)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Truncated | CheckpointError::Corrupted),
        "torn checkpoint must not parse, got: {err}"
    );

    // ...and recovery falls back to checkpoint 1.
    let rec = recover_session(&dir, DocRank, *e.options(), &F64Codec, &F64Codec)
        .unwrap()
        .expect("previous good checkpoint exists");
    assert_eq!(rec.seq, 1);
    assert_eq!(rec.skipped, 1);
    assert_eq!(rec.engine.values(), &good_values[..]);
    assert!(
        !rec.engine.graph().has_edge(0, 2),
        "recovered state predates the torn checkpoint"
    );

    // The recovered engine is live: it refines the lost batch again and
    // converges to the same state the original reached.
    let mut recovered = rec.engine;
    let mut batch = graphbolt_graph::MutationBatch::new();
    batch.add(Edge::new(0, 2, 1.0));
    recovered.apply_batch(&batch).unwrap();
    assert_eq!(recovered.values(), e.values());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario 3: an injected ingestion fault surfaces as a typed error and
/// leaves the session usable.
#[test]
fn injected_ingest_error_rejects_one_submission() {
    let session = StreamSession::spawn(engine());
    arm("session::ingest", FaultAction::Error, 1);
    assert_eq!(
        session.try_add(Edge::new(0, 4, 1.0)),
        Err(SessionError::Injected)
    );
    // The plan is exhausted; the session serves normally afterwards.
    session.add(Edge::new(0, 4, 1.0)).unwrap();
    session.flush().unwrap();
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.stats.mutations_applied, 1);
    assert!(outcome.engine.graph().has_edge(0, 4));
}

/// Spawns a front door over a fresh session, returning the controller so
/// tests can read its accounting directly.
fn front_door() -> (
    FrontDoor,
    Arc<StreamSession<DocRank>>,
    Arc<AdmissionController>,
) {
    let session = Arc::new(StreamSession::spawn(engine()));
    let controller = Arc::new(AdmissionController::new(AdmissionConfig::default()));
    let door = FrontDoor::bind(
        "127.0.0.1:0",
        Arc::clone(&session),
        Arc::clone(&controller),
        FrontDoorConfig::default(),
    )
    .expect("bind front door");
    (door, session, controller)
}

/// One raw HTTP exchange, tolerant of the server dropping the connection
/// (the injected-accept scenario): write errors are ignored and whatever
/// bytes arrive (possibly none) are returned.
fn exchange(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.write_all(raw.as_bytes());
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        ),
    )
}

/// Tears a door + session pair down and asserts the final state equals a
/// from-scratch run on the final graph — the "no corruption" acceptance
/// bar shared by every front-door fault scenario.
fn finish_and_check(
    door: FrontDoor,
    session: Arc<StreamSession<DocRank>>,
) -> graphbolt_core::SessionOutcome<DocRank> {
    door.shutdown();
    let outcome = Arc::into_inner(session)
        .expect("sole owner")
        .finish()
        .expect("finish");
    let expect = scratch_values(&outcome.engine);
    for (v, (a, b)) in outcome.engine.values().iter().zip(&expect).enumerate() {
        assert!(
            (a - b).abs() < 1e-7,
            "vertex {v}: served {a} vs from-scratch {b}"
        );
    }
    outcome
}

/// Scenario 4: an injected accept fault drops the connection before any
/// byte is parsed. The client sees a closed socket; the session neither
/// sees the mutation nor corrupts later traffic.
#[test]
fn injected_accept_fault_drops_the_connection_only() {
    let (door, session, _ctl) = front_door();
    let addr = door.local_addr();

    arm("frontdoor::accept", FaultAction::Error, 1);
    let dropped = post(addr, "/update", "{\"src\":0,\"dst\":2}");
    assert!(
        dropped.is_empty(),
        "dropped connection must carry no response, got: {dropped}"
    );

    // The plan is exhausted; the same request now lands.
    let ok = post(addr, "/update", "{\"src\":0,\"dst\":2}");
    assert!(ok.starts_with("HTTP/1.1 202"), "{ok}");

    let outcome = finish_and_check(door, session);
    assert!(outcome.engine.graph().has_edge(0, 2));
    assert_eq!(outcome.stats.singletons, 1, "exactly one mutation served");
}

/// Scenario 5: an injected parse fault turns a well-formed request into a
/// 400. The mutation it carried must not reach the session.
#[test]
fn injected_parse_fault_rejects_without_mutating() {
    let (door, session, _ctl) = front_door();
    let addr = door.local_addr();

    arm("frontdoor::parse", FaultAction::Error, 1);
    let rejected = post(addr, "/update", "{\"src\":1,\"dst\":3}");
    assert!(rejected.starts_with("HTTP/1.1 400"), "{rejected}");
    assert!(rejected.contains("injected parse fault"), "{rejected}");

    let ok = post(addr, "/update", "{\"src\":1,\"dst\":3}");
    assert!(ok.starts_with("HTTP/1.1 202"), "{ok}");

    let outcome = finish_and_check(door, session);
    assert!(outcome.engine.graph().has_edge(1, 3));
    assert_eq!(outcome.stats.singletons, 1, "400'd request never reached the session");
}

/// Scenario 6: an injected admission fault sheds one request with a typed
/// 429 before it touches queue capacity; the controller's accounting
/// records the shed and the session stays pristine.
#[test]
fn injected_admission_fault_sheds_with_retry_after() {
    let (door, session, ctl) = front_door();
    let addr = door.local_addr();

    arm("admission::admit", FaultAction::Error, 1);
    let shed = post(addr, "/update", "{\"src\":2,\"dst\":4}");
    assert!(shed.starts_with("HTTP/1.1 429"), "{shed}");
    assert!(shed.contains("\"error\":\"retry_after\""), "{shed}");
    assert!(shed.contains("\"class\":\"interactive\""), "{shed}");

    let ok = post(addr, "/update", "{\"src\":2,\"dst\":4}");
    assert!(ok.starts_with("HTTP/1.1 202"), "{ok}");

    let snap = ctl.snapshot();
    let interactive = snap.classes[ClientClass::Interactive.index()];
    assert_eq!(
        (interactive.admitted, interactive.shed),
        (1, 1),
        "one admit, one injected shed"
    );

    let outcome = finish_and_check(door, session);
    assert!(outcome.engine.graph().has_edge(2, 4));
    assert_eq!(outcome.stats.singletons, 1, "shed request never consumed queue capacity");
}

/// Scenario 7: an injected deadline expiry sheds one queued mutation at
/// dequeue. The shed mutation leaves no trace; later traffic applies and
/// the final state equals from-scratch on the served mutations only.
#[test]
fn injected_deadline_expiry_sheds_the_queued_mutation() {
    let session = StreamSession::spawn(engine());

    arm("session::deadline", FaultAction::Error, 1);
    session.add(Edge::new(0, 2, 1.0)).unwrap();
    session.flush().unwrap();

    // The shed mutation is invisible to queries...
    let served = session.query().unwrap();
    let expect = scratch_values(&engine());
    for (a, b) in served.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-9, "shed mutation must not be visible");
    }

    // ...and the session keeps serving.
    session.add(Edge::new(1, 3, 1.0)).unwrap();
    session.flush().unwrap();

    let outcome = session.finish().unwrap();
    assert_eq!(outcome.stats.deadline_shed, 1);
    assert_eq!(outcome.stats.mutations_applied, 1);
    assert!(!outcome.engine.graph().has_edge(0, 2), "shed mutation never lands");
    assert!(outcome.engine.graph().has_edge(1, 3));
    let expect = scratch_values(&outcome.engine);
    for (a, b) in outcome.engine.values().iter().zip(&expect) {
        assert!((a - b).abs() < 1e-7);
    }
}

/// A truncated checkpoint round-trip sanity check that does not touch the
/// injector: cutting the serialized container anywhere must never parse.
#[test]
fn every_prefix_of_a_session_file_is_rejected() {
    let e = engine();
    let full = session_file_bytes(&e, 9, &F64Codec, &F64Codec);
    for cut in [0, 3, 13, full.len() / 2, full.len() - 1] {
        let torn = Bytes::from(full[..cut].to_vec());
        assert!(
            parse_session_file(torn).is_err(),
            "prefix of {cut} bytes must not parse"
        );
    }
}
