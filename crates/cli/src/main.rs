//! Thin binary wrapper over [`graphbolt_cli::run`].

fn main() {
    let opts = match graphbolt_cli::Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match graphbolt_cli::run(&opts) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
