//! `gbolt` — command-line streaming graph analytics.
//!
//! ```text
//! gbolt <algorithm> --graph <edges.{txt,bin}> [options]
//!
//! algorithms:
//!   pagerank | labelprop | coem | cc | sssp | bfs | sswp | triangles
//!
//! options:
//!   --graph PATH        edge list (text: "src dst [weight]"; binary: GBLT)
//!   --stream PATH       mutation stream (GBMS) to replay after the
//!                       initial run, one refinement per batch
//!   --iterations N      BSP iterations per epoch            [10]
//!   --source V          source vertex for sssp/bfs          [0]
//!   --labels F          label count for labelprop           [4]
//!   --seed-stride S     every S-th vertex is a seed          [10]
//!   --tolerance X       selective-scheduling tolerance      [1e-6]
//!   --cutoff K          horizontal-pruning cut-off          [track all]
//!   --symmetric         mirror every edge on load
//!   --output PATH       write final per-vertex values
//!   --memory-budget B   dependency-store budget in bytes (degrades to
//!                       tighter pruning, then per-batch recompute)
//!
//! serve mode (scalar algorithms):
//!   --serve             replay the stream through a fault-isolated
//!                       StreamSession instead of direct refinement
//!   --queue-capacity N  bound the session queue (backpressure)
//!   --checkpoint-dir D  persist recoverable checkpoints into D
//!   --checkpoint-every N  batches between checkpoints        [1]
//!   --checkpoint-keep N   newest checkpoints retained        [3]
//!   --resume            restore from the newest good checkpoint in
//!                       --checkpoint-dir before replaying the stream
//!   --metrics-addr A    serve Prometheus text on http://A/metrics (and
//!                       JSON on /metrics/json, liveness on /healthz);
//!                       port 0 picks a free port, the bound address is
//!                       printed in the report
//!   --trace-out PATH    append structured trace events (JSON lines) to
//!                       PATH while the session runs
//!   --flight-out PATH   enable causal span tracing and append automatic
//!                       flight-recorder dumps (quarantine, SLO breach,
//!                       shed spike) to PATH as JSON lines
//!
//! front door (serve mode):
//!   --listen HOST:PORT  after replaying --stream, serve HTTP ingestion
//!                       until a client POSTs /shutdown: POST /update
//!                       (singleton fast path), POST /batch, GET /query,
//!                       plus the /metrics family; port 0 picks a free
//!                       port, the bound address is printed in the report
//!   --admit-interactive RATE[:BURST]   per-class token buckets gating
//!   --admit-bulk RATE[:BURST]          admission (tokens/sec; burst
//!   --admit-best-effort RATE[:BURST]   defaults to one second of rate)
//!   --deadline-ms N     default request deadline when the client sends
//!                       no X-Deadline-Ms header
//!
//! observability:
//!   gbolt stats [--metrics-addr A]
//!                       without an address: print this process's metric
//!                       registry; with one: scrape a running serve-mode
//!                       session's /metrics/json and pretty-print it
//!   gbolt trace [--metrics-addr A]
//!                       without an address: print this process's flight
//!                       recorder (recent span trees) and latest critical-
//!                       path report; with one: scrape a running session's
//!                       /debug/flight and /debug/critical
//! ```
//!
//! The binary is a thin wrapper over [`run`], which is exercised directly
//! by the test suite.

use std::fmt::Write as _;
use std::path::Path;

use graphbolt_algorithms::{
    CoEm, ConnectedComponents, LabelPropagation, PageRank, ShortestPaths, TriangleCounter,
    WidestPaths,
};
use graphbolt_core::{
    recover_session, telemetry, AdmissionConfig, AdmissionController, Algorithm, BucketConfig,
    CheckpointPolicy, DegradeLevel, EngineOptions, F64Codec, FrontDoor, FrontDoorConfig,
    SessionConfig, StreamSession, StreamingEngine,
};
use graphbolt_graph::{io, GraphSnapshot, MutationBatch};

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Algorithm name (see module docs).
    pub algorithm: String,
    /// Path to the input edge list.
    pub graph: String,
    /// Optional mutation stream to replay.
    pub stream: Option<String>,
    /// BSP iterations per epoch.
    pub iterations: usize,
    /// Source vertex for path algorithms.
    pub source: u32,
    /// Label count for label propagation.
    pub labels: usize,
    /// Seed stride for labelprop/coem.
    pub seed_stride: usize,
    /// Scheduling tolerance.
    pub tolerance: f64,
    /// Horizontal-pruning cut-off.
    pub cutoff: Option<usize>,
    /// Mirror edges on load.
    pub symmetric: bool,
    /// Optional output path for final values.
    pub output: Option<String>,
    /// Dependency-store memory budget in bytes.
    pub memory_budget: Option<usize>,
    /// Replay the stream through a fault-isolated [`StreamSession`].
    pub serve: bool,
    /// Bounded session queue capacity (serve mode).
    pub queue_capacity: Option<usize>,
    /// Directory for recoverable checkpoints (serve mode).
    pub checkpoint_dir: Option<String>,
    /// Batches between checkpoints (serve mode).
    pub checkpoint_every: usize,
    /// Newest checkpoints retained on disk (serve mode).
    pub checkpoint_keep: usize,
    /// Restore from the newest good checkpoint before replaying.
    pub resume: bool,
    /// Bind an HTTP metrics endpoint here (serve mode / `stats`).
    pub metrics_addr: Option<String>,
    /// Write structured trace events (JSONL) here (serve mode).
    pub trace_out: Option<String>,
    /// Enable span tracing and write flight-recorder dumps (JSONL)
    /// here (serve mode).
    pub flight_out: Option<String>,
    /// Worker threads for the global pool (`None` = machine default).
    pub threads: Option<usize>,
    /// Bind the HTTP front door here after the stream replay (serve
    /// mode); the process then serves until a client POSTs `/shutdown`.
    pub listen: Option<String>,
    /// Interactive-class admission bucket override.
    pub admit_interactive: Option<BucketConfig>,
    /// Bulk-class admission bucket override.
    pub admit_bulk: Option<BucketConfig>,
    /// Best-effort-class admission bucket override.
    pub admit_best_effort: Option<BucketConfig>,
    /// Default request deadline (milliseconds) for front-door requests
    /// that carry no `X-Deadline-Ms` header.
    pub deadline_ms: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            algorithm: String::new(),
            graph: String::new(),
            stream: None,
            iterations: 10,
            source: 0,
            labels: 4,
            seed_stride: 10,
            tolerance: 1e-6,
            cutoff: None,
            symmetric: false,
            output: None,
            memory_budget: None,
            serve: false,
            queue_capacity: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            checkpoint_keep: 3,
            resume: false,
            metrics_addr: None,
            trace_out: None,
            flight_out: None,
            threads: None,
            listen: None,
            admit_interactive: None,
            admit_bulk: None,
            admit_best_effort: None,
            deadline_ms: None,
        }
    }
}

impl Options {
    /// Parses argv-style arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        let Some(alg) = it.next() else {
            return Err(usage());
        };
        opts.algorithm = alg;
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
            };
            match arg.as_str() {
                "--graph" => opts.graph = value("--graph")?,
                "--stream" => opts.stream = Some(value("--stream")?),
                "--iterations" => {
                    opts.iterations = parse_num(&value("--iterations")?, "--iterations")?
                }
                "--source" => opts.source = parse_num(&value("--source")?, "--source")?,
                "--labels" => opts.labels = parse_num(&value("--labels")?, "--labels")?,
                "--seed-stride" => {
                    opts.seed_stride = parse_num(&value("--seed-stride")?, "--seed-stride")?
                }
                "--tolerance" => opts.tolerance = parse_num(&value("--tolerance")?, "--tolerance")?,
                "--cutoff" => opts.cutoff = Some(parse_num(&value("--cutoff")?, "--cutoff")?),
                "--symmetric" => opts.symmetric = true,
                "--output" => opts.output = Some(value("--output")?),
                "--memory-budget" => {
                    opts.memory_budget =
                        Some(parse_num(&value("--memory-budget")?, "--memory-budget")?)
                }
                "--serve" => opts.serve = true,
                "--queue-capacity" => {
                    opts.queue_capacity =
                        Some(parse_num(&value("--queue-capacity")?, "--queue-capacity")?)
                }
                "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?),
                "--checkpoint-every" => {
                    opts.checkpoint_every =
                        parse_num(&value("--checkpoint-every")?, "--checkpoint-every")?
                }
                "--checkpoint-keep" => {
                    opts.checkpoint_keep =
                        parse_num(&value("--checkpoint-keep")?, "--checkpoint-keep")?
                }
                "--resume" => opts.resume = true,
                "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
                "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
                "--flight-out" => opts.flight_out = Some(value("--flight-out")?),
                "--threads" => opts.threads = Some(parse_num(&value("--threads")?, "--threads")?),
                "--listen" => opts.listen = Some(value("--listen")?),
                "--admit-interactive" => {
                    opts.admit_interactive = Some(parse_bucket(&value("--admit-interactive")?, "--admit-interactive")?)
                }
                "--admit-bulk" => {
                    opts.admit_bulk = Some(parse_bucket(&value("--admit-bulk")?, "--admit-bulk")?)
                }
                "--admit-best-effort" => {
                    opts.admit_best_effort =
                        Some(parse_bucket(&value("--admit-best-effort")?, "--admit-best-effort")?)
                }
                "--deadline-ms" => {
                    opts.deadline_ms = Some(parse_num(&value("--deadline-ms")?, "--deadline-ms")?)
                }
                other => return Err(format!("unknown option {other}\n{}", usage())),
            }
        }
        // The `stats` and `trace` subcommands inspect a running endpoint
        // (or this process's registry / span ring) — they take no graph
        // and no serve session.
        let is_observer = matches!(opts.algorithm.as_str(), "stats" | "trace");
        if opts.graph.is_empty() && !is_observer {
            return Err(format!("--graph is required\n{}", usage()));
        }
        if opts.iterations == 0 {
            return Err("--iterations must be positive".into());
        }
        if !opts.serve && (opts.queue_capacity.is_some() || opts.checkpoint_dir.is_some() || opts.resume)
        {
            return Err(
                "--queue-capacity/--checkpoint-dir/--resume require --serve".to_string(),
            );
        }
        if opts.resume && opts.checkpoint_dir.is_none() {
            return Err("--resume requires --checkpoint-dir".to_string());
        }
        if opts.metrics_addr.is_some() && !(opts.serve || is_observer) {
            return Err(
                "--metrics-addr requires --serve (or the stats/trace subcommands)".to_string()
            );
        }
        if opts.trace_out.is_some() && !opts.serve {
            return Err("--trace-out requires --serve".to_string());
        }
        if opts.flight_out.is_some() && !opts.serve {
            return Err("--flight-out requires --serve".to_string());
        }
        if opts.listen.is_some() && !opts.serve {
            return Err("--listen requires --serve".to_string());
        }
        if opts.listen.is_none()
            && (opts.admit_interactive.is_some()
                || opts.admit_bulk.is_some()
                || opts.admit_best_effort.is_some()
                || opts.deadline_ms.is_some())
        {
            return Err("--admit-*/--deadline-ms require --listen".to_string());
        }
        if opts.threads == Some(0) {
            return Err("--threads must be positive".to_string());
        }
        Ok(opts)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse {s:?} for {flag}"))
}

fn parse_bucket(s: &str, flag: &str) -> Result<BucketConfig, String> {
    BucketConfig::parse(s)
        .ok_or_else(|| format!("cannot parse {s:?} for {flag} (expected RATE[:BURST])"))
}

/// The usage string.
pub fn usage() -> String {
    "usage: gbolt <pagerank|labelprop|coem|cc|sssp|bfs|sswp|triangles> --graph PATH \
     [--stream PATH] [--iterations N] [--source V] [--labels F] [--seed-stride S] \
     [--tolerance X] [--cutoff K] [--symmetric] [--output PATH] [--memory-budget B] \
     [--threads N] \
     [--serve [--queue-capacity N] [--checkpoint-dir D] [--checkpoint-every N] \
     [--checkpoint-keep N] [--resume] [--metrics-addr HOST:PORT] [--trace-out PATH] \
     [--flight-out PATH] \
     [--listen HOST:PORT [--admit-interactive R[:B]] [--admit-bulk R[:B]] \
     [--admit-best-effort R[:B]] [--deadline-ms N]]]\n\
     \x20      gbolt stats [--metrics-addr HOST:PORT]\n\
     \x20      gbolt trace [--metrics-addr HOST:PORT]"
        .to_string()
}

/// Loads the input graph, dispatching on the file extension.
fn load_graph(opts: &Options) -> Result<GraphSnapshot, String> {
    let path = Path::new(&opts.graph);
    let mut edges = if path.extension().is_some_and(|e| e == "bin") {
        io::read_binary(path).map_err(|e| e.to_string())?
    } else {
        io::read_edge_list(path).map_err(|e| e.to_string())?
    };
    if opts.symmetric {
        let mirrored: Vec<_> = edges.iter().map(|e| e.reversed()).collect();
        edges.extend(mirrored);
    }
    let n = graphbolt_graph::generators::vertex_count(&edges);
    if n == 0 {
        return Err("input graph is empty".into());
    }
    Ok(GraphSnapshot::from_edges(n, &edges))
}

fn load_stream(opts: &Options) -> Result<Vec<MutationBatch>, String> {
    match &opts.stream {
        Some(path) => io::read_batches(path).map_err(|e| e.to_string()),
        None => Ok(Vec::new()),
    }
}

/// Runs the CLI; returns the report text that `main` prints.
///
/// # Errors
///
/// Returns a human-readable message on bad arguments or I/O failure.
pub fn run(opts: &Options) -> Result<String, String> {
    if opts.algorithm == "stats" {
        return run_stats(opts);
    }
    if opts.algorithm == "trace" {
        return run_trace(opts);
    }
    if let Some(threads) = opts.threads {
        // Best effort: the global pool freezes at its first use, so a
        // second `run` in the same process keeps the first size.
        let _ = graphbolt_engine::parallel::set_global_threads(threads);
    }
    let graph = load_graph(opts)?;
    let batches = load_stream(opts)?;
    let engine_opts = {
        let mut o = EngineOptions::with_iterations(opts.iterations);
        o.horizontal_cutoff = opts.cutoff;
        o.memory_budget = opts.memory_budget;
        o
    };
    let n = graph.num_vertices();
    if matches!(opts.algorithm.as_str(), "sssp" | "bfs" | "sswp") && (opts.source as usize) >= n {
        return Err(format!(
            "--source {} out of range: the graph has {n} vertices",
            opts.source
        ));
    }
    match opts.algorithm.as_str() {
        "pagerank" => drive_scalar(
            graph,
            batches,
            PageRank::with_tolerance(opts.tolerance),
            engine_opts,
            opts,
        ),
        "coem" => {
            let mut alg = CoEm::with_synthetic_seeds(n, opts.seed_stride);
            alg.tolerance = opts.tolerance;
            drive_scalar(graph, batches, alg, engine_opts, opts)
        }
        "cc" => drive_scalar(
            graph,
            batches,
            ConnectedComponents::new(),
            engine_opts,
            opts,
        ),
        "sssp" => drive_scalar(
            graph,
            batches,
            ShortestPaths::new(opts.source),
            engine_opts,
            opts,
        ),
        "sswp" => drive_scalar(
            graph,
            batches,
            WidestPaths::new(opts.source),
            engine_opts,
            opts,
        ),
        "bfs" => drive_scalar(
            graph,
            batches,
            ShortestPaths::bfs(opts.source),
            engine_opts,
            opts,
        ),
        "labelprop" => {
            let mut alg = LabelPropagation::with_synthetic_seeds(opts.labels, n, opts.seed_stride);
            alg.tolerance = opts.tolerance;
            drive_vector(graph, batches, alg, engine_opts, opts)
        }
        "triangles" => drive_triangles(graph, batches, opts),
        other => Err(format!("unknown algorithm {other:?}\n{}", usage())),
    }
}

fn header(g: &GraphSnapshot, batches: &[MutationBatch]) -> String {
    let s = graphbolt_graph::stats(g);
    format!(
        "graph: {} vertices, {} edges (max out-degree {}, top-1% share {:.1}%)\nstream: {} batches\n",
        s.vertices,
        s.edges,
        s.max_out_degree,
        100.0 * s.top1pct_share,
        batches.len()
    )
}

fn drive_engine<A: Algorithm>(
    graph: GraphSnapshot,
    batches: Vec<MutationBatch>,
    alg: A,
    engine_opts: EngineOptions,
    report: &mut String,
) -> Result<StreamingEngine<A>, String> {
    let mut engine = StreamingEngine::new(graph, alg, engine_opts);
    let t = std::time::Instant::now();
    engine.run_initial();
    let _ = writeln!(report, "initial run: {:?}", t.elapsed());
    for (i, raw) in batches.into_iter().enumerate() {
        let batch = raw.normalize_against(engine.graph());
        if batch.is_empty() {
            let _ = writeln!(report, "batch {i}: empty after normalization, skipped");
            continue;
        }
        let r = engine
            .apply_batch(&batch)
            .map_err(|e| format!("batch {i}: {e}"))?;
        let _ = writeln!(
            report,
            "batch {i}: {} mutations refined {} vertices in {:?} ({} edge computations)",
            batch.len(),
            r.refined_vertices,
            r.duration,
            r.edge_computations
        );
    }
    let _ = writeln!(
        report,
        "dependency store: {} aggregation values, {} bytes",
        engine.stored_aggregations(),
        engine.dependency_memory_bytes()
    );
    Ok(engine)
}

fn drive_scalar<A: Algorithm<Value = f64, Agg = f64> + Clone + 'static>(
    graph: GraphSnapshot,
    batches: Vec<MutationBatch>,
    alg: A,
    engine_opts: EngineOptions,
    opts: &Options,
) -> Result<String, String> {
    let mut report = header(&graph, &batches);
    let engine = if opts.serve {
        drive_serve(graph, batches, alg, engine_opts, opts, &mut report)?
    } else {
        drive_engine(graph, batches, alg, engine_opts, &mut report)?
    };
    maybe_write_values(opts, engine.values().iter().map(|v| format!("{v}")))?;
    let (min, max) = min_max(engine.values());
    let _ = writeln!(report, "values: min {min:.6}, max {max:.6}");
    Ok(report)
}

/// Serve mode: replay the stream through a [`StreamSession`] — panic
/// isolation, optional bounded ingestion, and checkpoint cadence with
/// `--resume` recovery.
fn drive_serve<A: Algorithm<Value = f64, Agg = f64> + Clone + 'static>(
    graph: GraphSnapshot,
    batches: Vec<MutationBatch>,
    alg: A,
    engine_opts: EngineOptions,
    opts: &Options,
    report: &mut String,
) -> Result<StreamingEngine<A>, String> {
    // Bind the metrics endpoint before any engine work so scrapes see
    // the whole run; the bound address (resolving port 0) goes into the
    // report so callers can find it.
    let metrics_server = match &opts.metrics_addr {
        Some(addr) => {
            let server = telemetry::http::MetricsServer::bind(addr.as_str())
                .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            let _ = writeln!(
                report,
                "metrics endpoint: http://{}/metrics",
                server.local_addr()
            );
            Some(server)
        }
        None => None,
    };
    if let Some(path) = &opts.flight_out {
        // Span tracing is otherwise armed lazily by the front door;
        // --flight-out opts the whole serve run in so stream-replay
        // batches are attributed too, and installs the dump sink.
        telemetry::span::enable();
        telemetry::span::configure(telemetry::span::FlightConfig {
            dump_path: Some(std::path::PathBuf::from(path)),
            ..telemetry::span::FlightConfig::default()
        });
        let _ = writeln!(report, "flight dumps: {path}");
    }
    let _trace = match &opts.trace_out {
        Some(path) => {
            let sink = std::sync::Arc::new(
                telemetry::trace::JsonlSink::create(Path::new(path))
                    .map_err(|e| format!("--trace-out {path}: {e}"))?,
            );
            telemetry::trace::set_subscriber(sink.clone());
            let _ = writeln!(report, "trace events: {path}");
            Some(TraceOutGuard(sink))
        }
        None => None,
    };

    let t = std::time::Instant::now();
    let engine = match (&opts.checkpoint_dir, opts.resume) {
        (Some(dir), true) => {
            match recover_session(Path::new(dir), alg.clone(), engine_opts, &F64Codec, &F64Codec)
                .map_err(|e| e.to_string())?
            {
                Some(rec) => {
                    let _ = writeln!(
                        report,
                        "resumed from checkpoint {} in {:?} ({} damaged checkpoint(s) skipped); \
                         --graph input superseded by the checkpointed snapshot",
                        rec.seq,
                        t.elapsed(),
                        rec.skipped
                    );
                    rec.engine
                }
                None => {
                    let _ = writeln!(report, "no checkpoint to resume from, running initial");
                    initial_engine(graph, alg.clone(), engine_opts, report)
                }
            }
        }
        _ => initial_engine(graph, alg.clone(), engine_opts, report),
    };

    // One controller shared by the front door (admission decisions) and
    // the session worker (degrade-level feedback tightening the
    // non-interactive buckets).
    let admission = opts.listen.as_ref().map(|_| {
        let mut cfg = AdmissionConfig::default();
        if let Some(b) = opts.admit_interactive {
            cfg.interactive = b;
        }
        if let Some(b) = opts.admit_bulk {
            cfg.bulk = b;
        }
        if let Some(b) = opts.admit_best_effort {
            cfg.best_effort = b;
        }
        std::sync::Arc::new(AdmissionController::new(cfg))
    });
    let config = SessionConfig {
        queue_capacity: opts.queue_capacity,
        checkpoint: opts.checkpoint_dir.as_ref().map(|dir| {
            CheckpointPolicy::new(
                dir,
                opts.checkpoint_every,
                opts.checkpoint_keep,
                F64Codec,
                F64Codec,
            )
        }),
        admission: admission.clone(),
        ..SessionConfig::default()
    };
    let session = StreamSession::spawn_with(engine, config);
    for (i, batch) in batches.into_iter().enumerate() {
        let fail = |e: graphbolt_core::SessionError| format!("batch {i}: {e}");
        for e in batch.additions() {
            session.add(*e).map_err(fail)?;
        }
        for e in batch.deletions() {
            session.delete(*e).map_err(fail)?;
        }
        // Flush per stream batch so batch boundaries survive coalescing.
        session.flush().map_err(fail)?;
    }
    let outcome = match (&opts.listen, admission) {
        (Some(addr), Some(admission)) => {
            serve_front_door(addr, session, &admission, opts, report)?
        }
        _ => session.finish().map_err(|e| e.to_string())?,
    };
    let s = outcome.stats;
    let _ = writeln!(
        report,
        "session: {} batches, {} mutations applied, {} dropped as conflicting",
        s.batches, s.mutations_applied, s.mutations_dropped
    );
    if s.batches_quarantined > 0 {
        let _ = writeln!(
            report,
            "session: {} batch(es) quarantined ({} mutations, {} panic(s) recovered)",
            s.batches_quarantined, s.mutations_quarantined, s.panics_recovered
        );
    }
    if opts.checkpoint_dir.is_some() {
        let _ = writeln!(
            report,
            "session: {} checkpoint(s) written, {} failed",
            s.checkpoints_written, s.checkpoint_failures
        );
    }
    if outcome.engine.degrade_level() != DegradeLevel::None {
        let _ = writeln!(
            report,
            "memory budget: engine degraded to {:?}",
            outcome.engine.degrade_level()
        );
    }
    // Keep answering scrapes for the rest of the process: tooling that
    // launched a serve run expects to read /metrics after the replay.
    if let Some(server) = metrics_server {
        server.detach();
    }
    Ok(outcome.engine)
}

/// Binds the network front door after the stream replay, serves until a
/// client POSTs `/shutdown`, then drains the session and reports the
/// per-class admission tallies and the observed ingest→visible p99.
fn serve_front_door<A: Algorithm<Value = f64> + 'static>(
    addr: &str,
    session: StreamSession<A>,
    admission: &std::sync::Arc<AdmissionController>,
    opts: &Options,
    report: &mut String,
) -> Result<graphbolt_core::SessionOutcome<A>, String> {
    let session = std::sync::Arc::new(session);
    let door = FrontDoor::bind(
        addr,
        std::sync::Arc::clone(&session),
        std::sync::Arc::clone(admission),
        FrontDoorConfig {
            default_deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        },
    )
    .map_err(|e| format!("--listen {addr}: {e}"))?;
    let _ = writeln!(
        report,
        "front door: http://{} (POST /update /batch /shutdown, GET /query)",
        door.local_addr()
    );
    door.wait_shutdown();
    door.shutdown();
    let snap = admission.snapshot();
    for class in graphbolt_core::admission::CLASSES {
        let stats = snap.classes[class.index()];
        let _ = writeln!(
            report,
            "admission[{class}]: {} admitted, {} shed",
            stats.admitted, stats.shed
        );
    }
    let hist = telemetry::metrics().ingest_visible_latency_ns.snapshot();
    if hist.count > 0 {
        let _ = writeln!(
            report,
            "ingest->visible latency: p99 {:.3} ms over {} samples",
            hist.quantile(0.99) as f64 / 1e6,
            hist.count
        );
    }
    std::sync::Arc::into_inner(session)
        .ok_or_else(|| "front door still holds the session after shutdown".to_string())?
        .finish()
        .map_err(|e| e.to_string())
}

/// Unsubscribes and flushes the `--trace-out` sink when serve mode
/// exits (on success *and* on every `?` early return, so a failed run
/// never leaves a stale subscriber installed for later in-process
/// callers).
struct TraceOutGuard(std::sync::Arc<telemetry::trace::JsonlSink>);

impl Drop for TraceOutGuard {
    fn drop(&mut self) {
        telemetry::trace::clear_subscriber();
        self.0.flush();
    }
}

/// `gbolt stats`: report metrics, either scraped from a running
/// serve-mode session (`--metrics-addr`) or from this process's own
/// registry.
fn run_stats(opts: &Options) -> Result<String, String> {
    match &opts.metrics_addr {
        Some(addr) => {
            let body = http_get(addr, "/metrics/json")?;
            Ok(pretty_json(&body))
        }
        None => Ok(render_local_stats()),
    }
}

/// `gbolt trace`: dump the flight recorder (recent span trees) and the
/// latest per-batch critical-path report, either scraped from a running
/// serve-mode session (`--metrics-addr`) or from this process's ring.
fn run_trace(opts: &Options) -> Result<String, String> {
    let (flight, critical) = match &opts.metrics_addr {
        Some(addr) => (
            http_get(addr, "/debug/flight")?,
            http_get(addr, "/debug/critical")?,
        ),
        None => (
            telemetry::span::flight_json(),
            telemetry::span::critical_json(),
        ),
    };
    Ok(format!(
        "flight:\n{}critical:\n{}",
        pretty_json(&flight),
        pretty_json(&critical)
    ))
}

/// Minimal HTTP/1.1 GET against `addr`, returning the response body.
/// Enough for the loopback metrics endpoint; not a general client.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("request to {addr} failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("response from {addr} failed: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(format!("{addr}{path} answered: {status}"));
    }
    Ok(body.to_string())
}

/// Indentation-by-nesting pretty printer for the metrics JSON (which
/// contains no nested strings with braces beyond its own values).
fn pretty_json(json: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                depth += 1;
                newline(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => out.push_str(": "),
            _ => out.push(c),
        }
    }
    out.push('\n');
    out
}

/// Human-readable dump of this process's metric registry.
fn render_local_stats() -> String {
    let snapshot = telemetry::metrics().snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "counters:");
    for c in &snapshot.counters {
        let _ = writeln!(out, "  {:<44} {}", c.name, c.value);
    }
    let _ = writeln!(out, "gauges:");
    for g in &snapshot.gauges {
        let _ = writeln!(out, "  {:<44} {}", g.name, g.value);
    }
    let _ = writeln!(out, "histograms (count / p50 / p90 / p99 / max):");
    for h in &snapshot.histograms {
        let _ = writeln!(
            out,
            "  {:<44} {} / {} / {} / {} / {}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        );
    }
    out
}

fn initial_engine<A: Algorithm>(
    graph: GraphSnapshot,
    alg: A,
    engine_opts: EngineOptions,
    report: &mut String,
) -> StreamingEngine<A> {
    let mut engine = StreamingEngine::new(graph, alg, engine_opts);
    let t = std::time::Instant::now();
    engine.run_initial();
    let _ = writeln!(report, "initial run: {:?}", t.elapsed());
    engine
}

fn drive_vector<A: Algorithm<Value = Vec<f64>>>(
    graph: GraphSnapshot,
    batches: Vec<MutationBatch>,
    alg: A,
    engine_opts: EngineOptions,
    opts: &Options,
) -> Result<String, String> {
    let mut report = header(&graph, &batches);
    let engine = drive_engine(graph, batches, alg, engine_opts, &mut report)?;
    maybe_write_values(
        opts,
        engine
            .values()
            .iter()
            .map(|dist| format!("{}", LabelPropagation::argmax(dist))),
    )?;
    let mut counts = std::collections::HashMap::new();
    for dist in engine.values() {
        *counts
            .entry(LabelPropagation::argmax(dist))
            .or_insert(0usize) += 1;
    }
    let mut sizes: Vec<_> = counts.into_iter().collect();
    sizes.sort();
    let _ = writeln!(report, "label sizes: {sizes:?}");
    Ok(report)
}

fn drive_triangles(
    graph: GraphSnapshot,
    batches: Vec<MutationBatch>,
    opts: &Options,
) -> Result<String, String> {
    let mut report = header(&graph, &batches);
    let t = std::time::Instant::now();
    let mut tc = TriangleCounter::new(&graph);
    let _ = writeln!(report, "initial count: {:?}", t.elapsed());
    let mut g = graph;
    for (i, raw) in batches.into_iter().enumerate() {
        let batch = raw.normalize_against(&g);
        if batch.is_empty() {
            continue;
        }
        let t = std::time::Instant::now();
        tc.apply_batch(&batch);
        g = g.apply(&batch).map_err(|e| format!("batch {i}: {e}"))?;
        let _ = writeln!(
            report,
            "batch {i}: {} mutations adjusted in {:?}, {} directed 3-cycles",
            batch.len(),
            t.elapsed(),
            tc.directed_cycles()
        );
    }
    let _ = writeln!(report, "directed 3-cycles: {}", tc.directed_cycles());
    maybe_write_values(opts, std::iter::once(format!("{}", tc.directed_cycles())))?;
    Ok(report)
}

fn min_max(vals: &[f64]) -> (f64, f64) {
    let finite = vals.iter().copied().filter(|v| v.is_finite());
    let min = finite.clone().fold(f64::INFINITY, f64::min);
    let max = finite.fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

fn maybe_write_values(opts: &Options, lines: impl Iterator<Item = String>) -> Result<(), String> {
    let Some(path) = &opts.output else {
        return Ok(());
    };
    use std::io::Write;
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = std::io::BufWriter::new(f);
    for (v, line) in lines.enumerate() {
        writeln!(w, "{v}\t{line}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::Edge;

    fn write_sample_graph(dir: &Path) -> String {
        let path = dir.join("g.txt");
        io::write_edge_list(
            &path,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 0, 1.0),
                Edge::new(2, 3, 1.0),
            ],
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gbolt-test-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_requires_graph() {
        let err = Options::parse(["pagerank".to_string()]).unwrap_err();
        assert!(err.contains("--graph"));
    }

    #[test]
    fn parse_full_command_line() {
        let opts = Options::parse(
            [
                "sssp",
                "--graph",
                "g.txt",
                "--source",
                "3",
                "--iterations",
                "12",
                "--cutoff",
                "5",
                "--symmetric",
                "--threads",
                "4",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.algorithm, "sssp");
        assert_eq!(opts.source, 3);
        assert_eq!(opts.iterations, 12);
        assert_eq!(opts.cutoff, Some(5));
        assert!(opts.symmetric);
        assert_eq!(opts.threads, Some(4));
    }

    #[test]
    fn parse_rejects_zero_threads() {
        let err = Options::parse(
            ["pagerank", "--graph", "g.txt", "--threads", "0"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn parse_serve_flags() {
        let opts = Options::parse(
            [
                "pagerank",
                "--graph",
                "g.txt",
                "--serve",
                "--queue-capacity",
                "128",
                "--checkpoint-dir",
                "/tmp/ck",
                "--checkpoint-every",
                "2",
                "--memory-budget",
                "1048576",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(opts.serve);
        assert_eq!(opts.queue_capacity, Some(128));
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(opts.checkpoint_every, 2);
        assert_eq!(opts.memory_budget, Some(1 << 20));
    }

    #[test]
    fn parse_front_door_flags() {
        let opts = Options::parse(
            [
                "pagerank",
                "--graph",
                "g.txt",
                "--serve",
                "--listen",
                "127.0.0.1:0",
                "--admit-interactive",
                "50:100",
                "--admit-bulk",
                "5",
                "--deadline-ms",
                "250",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.admit_interactive, Some(BucketConfig::new(50.0, 100.0)));
        // A bare RATE defaults burst to the rate.
        assert_eq!(opts.admit_bulk, Some(BucketConfig::new(5.0, 5.0)));
        assert_eq!(opts.admit_best_effort, None);
        assert_eq!(opts.deadline_ms, Some(250));
    }

    #[test]
    fn parse_rejects_listen_without_serve() {
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--listen", "127.0.0.1:0"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--serve"), "{err}");
    }

    #[test]
    fn parse_rejects_admission_flags_without_listen() {
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--serve", "--admit-bulk", "5"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--serve", "--deadline-ms", "50"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--listen"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_bucket() {
        let err = Options::parse(
            [
                "pagerank",
                "--graph",
                "g",
                "--serve",
                "--listen",
                "127.0.0.1:0",
                "--admit-interactive",
                "fast",
            ]
            .map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("RATE[:BURST]"), "{err}");
    }

    #[test]
    fn parse_rejects_serve_flags_without_serve() {
        let err =
            Options::parse(["pagerank", "--graph", "g", "--checkpoint-dir", "d"].map(String::from))
                .unwrap_err();
        assert!(err.contains("--serve"), "{err}");
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--serve", "--resume"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
    }

    #[test]
    fn parse_rejects_telemetry_flags_without_serve() {
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--metrics-addr", "127.0.0.1:0"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--serve"), "{err}");
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--trace-out", "t.jsonl"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--serve"), "{err}");
    }

    #[test]
    fn parse_stats_subcommand_needs_no_graph() {
        let opts = Options::parse(["stats".to_string()]).unwrap();
        assert_eq!(opts.algorithm, "stats");
        let opts =
            Options::parse(["stats", "--metrics-addr", "127.0.0.1:9090"].map(String::from))
                .unwrap();
        assert_eq!(opts.metrics_addr.as_deref(), Some("127.0.0.1:9090"));
    }

    #[test]
    fn stats_without_address_dumps_the_local_registry() {
        let report = run(&Options {
            algorithm: "stats".into(),
            ..Options::default()
        })
        .unwrap();
        assert!(report.contains("counters:"), "{report}");
        assert!(report.contains("graphbolt_batches_applied_total"), "{report}");
        assert!(report.contains("histograms"), "{report}");
        assert!(report.contains("graphbolt_batch_refine_ns"), "{report}");
    }

    #[test]
    fn parse_trace_subcommand_needs_no_graph() {
        let opts = Options::parse(["trace".to_string()]).unwrap();
        assert_eq!(opts.algorithm, "trace");
        let opts =
            Options::parse(["trace", "--metrics-addr", "127.0.0.1:9090"].map(String::from))
                .unwrap();
        assert_eq!(opts.metrics_addr.as_deref(), Some("127.0.0.1:9090"));
    }

    #[test]
    fn parse_rejects_flight_out_without_serve() {
        let err = Options::parse(
            ["pagerank", "--graph", "g", "--flight-out", "f.jsonl"].map(String::from),
        )
        .unwrap_err();
        assert!(err.contains("--serve"), "{err}");
    }

    #[test]
    fn trace_without_address_dumps_the_local_ring() {
        let report = run(&Options {
            algorithm: "trace".into(),
            ..Options::default()
        })
        .unwrap();
        assert!(report.contains("flight:"), "{report}");
        assert!(report.contains("\"traces\""), "{report}");
        assert!(report.contains("critical:"), "{report}");
        assert!(report.contains("\"batches\""), "{report}");
    }

    #[test]
    fn stats_surfaces_trace_drop_accounting() {
        let report = run(&Options {
            algorithm: "stats".into(),
            ..Options::default()
        })
        .unwrap();
        assert!(report.contains("graphbolt_trace_dropped_total"), "{report}");
    }

    #[test]
    fn stats_against_a_dead_address_reports_the_failure() {
        // Port 1 on loopback is essentially never listening.
        let err = run(&Options {
            algorithm: "stats".into(),
            metrics_addr: Some("127.0.0.1:1".into()),
            ..Options::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        let err = Options::parse(["pagerank", "--graph", "g", "--frobnicate"].map(String::from))
            .unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn pagerank_end_to_end_with_stream() {
        let dir = tmpdir("pr");
        let graph = write_sample_graph(&dir);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 0, 1.0));
        let stream_path = dir.join("s.gbms");
        io::write_batches(&stream_path, &[batch]).unwrap();
        let out_path = dir.join("out.tsv");

        let opts = Options {
            algorithm: "pagerank".into(),
            graph,
            stream: Some(stream_path.to_string_lossy().into_owned()),
            output: Some(out_path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("batch 0"), "{report}");
        let written = std::fs::read_to_string(out_path).unwrap();
        assert_eq!(written.lines().count(), 4);
    }

    #[test]
    fn serve_mode_checkpoints_and_resumes() {
        let dir = tmpdir("serve");
        let ck_dir = dir.join("ckpts");
        let _ = std::fs::remove_dir_all(&ck_dir);
        let graph = write_sample_graph(&dir);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 0, 1.0));
        let stream_path = dir.join("s.gbms");
        io::write_batches(&stream_path, &[batch]).unwrap();

        let opts = Options {
            algorithm: "pagerank".into(),
            graph: graph.clone(),
            stream: Some(stream_path.to_string_lossy().into_owned()),
            serve: true,
            queue_capacity: Some(16),
            checkpoint_dir: Some(ck_dir.to_string_lossy().into_owned()),
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("1 checkpoint(s) written, 0 failed"), "{report}");
        assert!(report.contains("1 mutations applied"), "{report}");

        // Second run resumes from the checkpoint instead of recomputing,
        // applies a further batch, and must checkpoint it *after* seq 1 —
        // a resumed session continues the on-disk sequence.
        let mut batch2 = MutationBatch::new();
        batch2.add(Edge::new(0, 3, 1.0));
        let stream2_path = dir.join("s2.gbms");
        io::write_batches(&stream2_path, &[batch2]).unwrap();
        let opts = Options {
            resume: true,
            stream: Some(stream2_path.to_string_lossy().into_owned()),
            ..opts
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("resumed from checkpoint 1"), "{report}");
        assert!(report.contains("1 checkpoint(s) written, 0 failed"), "{report}");

        // Third run recovers the *resumed* run's checkpoint, not the
        // stale pre-resume one.
        let opts = Options {
            stream: None,
            ..opts
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("resumed from checkpoint 2"), "{report}");
        let _ = std::fs::remove_dir_all(&ck_dir);
    }

    #[test]
    fn serve_mode_with_memory_budget_degrades_but_stays_correct() {
        let dir = tmpdir("serve-budget");
        let graph = write_sample_graph(&dir);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 1, 1.0));
        let stream_path = dir.join("s.gbms");
        io::write_batches(&stream_path, &[batch.clone()]).unwrap();

        let base = Options {
            algorithm: "pagerank".into(),
            graph,
            stream: Some(stream_path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        let plain = run(&base).unwrap();
        let budgeted = run(&Options {
            serve: true,
            memory_budget: Some(1),
            ..base
        })
        .unwrap();
        assert!(budgeted.contains("degraded to DroppedStore"), "{budgeted}");
        // Identical final values line: degradation must not change results.
        let values_line = |r: &str| {
            r.lines()
                .find(|l| l.starts_with("values:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(values_line(&plain), values_line(&budgeted));
    }

    #[test]
    fn triangles_end_to_end() {
        let dir = tmpdir("tc");
        let graph = write_sample_graph(&dir);
        let opts = Options {
            algorithm: "triangles".into(),
            graph,
            ..Options::default()
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("directed 3-cycles: 1"), "{report}");
    }

    #[test]
    fn sssp_and_cc_run() {
        let dir = tmpdir("paths");
        let graph = write_sample_graph(&dir);
        for alg in ["sssp", "bfs", "sswp", "cc", "labelprop", "coem"] {
            let opts = Options {
                algorithm: alg.into(),
                graph: graph.clone(),
                ..Options::default()
            };
            let report = run(&opts).unwrap();
            assert!(report.contains("initial run"), "{alg}: {report}");
        }
    }

    #[test]
    fn unknown_algorithm_is_rejected() {
        let dir = tmpdir("bad");
        let graph = write_sample_graph(&dir);
        let opts = Options {
            algorithm: "florbs".into(),
            graph,
            ..Options::default()
        };
        assert!(run(&opts).is_err());
    }

    #[test]
    fn missing_file_is_reported() {
        let opts = Options {
            algorithm: "pagerank".into(),
            graph: "/nonexistent/graph.txt".into(),
            ..Options::default()
        };
        assert!(run(&opts).is_err());
    }

    #[test]
    fn out_of_range_source_is_rejected() {
        let dir = tmpdir("src-range");
        let graph = write_sample_graph(&dir);
        let opts = Options {
            algorithm: "sssp".into(),
            graph,
            source: 999,
            ..Options::default()
        };
        let err = run(&opts).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
