//! Overload acceptance: a serve-mode session behind the network front
//! door must shed excess bulk traffic with typed `429` responses while
//! admitting every interactive request, and the ingest→visible latency
//! p99 scraped from `/metrics/json` must stay inside the SLO. Mixed
//! traffic is driven over real TCP against the `gbolt` CLI entry point.
//! Afterwards the flight recorder (`/debug/flight`) must hold complete
//! span trees with zero orphans and `/debug/critical` a live per-batch
//! critical-path report — the dump is preserved for the CI artifact via
//! `GBOLT_FLIGHT_DUMP`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use graphbolt_cli::{run, Options};
use graphbolt_graph::{io, Edge};

/// Ingest→visible p99 ceiling for the overload gate. Generous — the
/// graph is tiny and singletons bypass batch assembly — but a scheduling
/// pathology (shed work wedging the worker, say) would blow through it.
const SLO_P99_NS: f64 = 250e6;

fn request(addr: &str, method: &str, path: &str, headers: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to front door");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{headers}\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("headers + body");
    (head.to_string(), body.to_string())
}

/// Extracts a flat `"name":value` number from the JSON exposition.
fn json_number(body: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = body.find(&key)? + key.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `field` from the named histogram's JSON object.
fn histogram_field(body: &str, histogram: &str, field: &str) -> Option<f64> {
    let key = format!("\"{histogram}\":{{");
    let start = body.find(&key)? + key.len();
    let object = &body[start..start + body[start..].find('}')?];
    json_number(object, field)
}

#[test]
fn overloaded_front_door_sheds_bulk_admits_interactive_and_holds_the_slo() {
    let dir = std::env::temp_dir().join("gbolt-overload");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("g.txt");
    io::write_edge_list(
        &graph_path,
        &[
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 0, 1.0),
            Edge::new(2, 3, 1.0),
        ],
    )
    .unwrap();

    // Reserve a port for --listen: port 0 is resolved by the door, but
    // the bound address only reaches the report after shutdown, too
    // late to drive traffic at it.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };

    // Bulk gets a bucket far smaller than the traffic we will offer;
    // interactive gets one far larger. Zero interactive shed is an
    // isolation assertion, not luck.
    let server = std::thread::spawn({
        let addr = addr.clone();
        let graph = graph_path.to_string_lossy().into_owned();
        move || {
            run(&Options {
                algorithm: "pagerank".into(),
                graph,
                serve: true,
                listen: Some(addr),
                admit_interactive: Some(graphbolt_core::BucketConfig::new(1e6, 1e6)),
                admit_bulk: Some(graphbolt_core::BucketConfig::new(1.0, 5.0)),
                deadline_ms: Some(5_000),
                ..Options::default()
            })
        }
    });

    // The door is up once /healthz answers (observability routes bypass
    // admission, so this cannot be shed).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut s) = TcpStream::connect(&addr) {
            let probe =
                format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
            let mut response = String::new();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            if s.write_all(probe.as_bytes()).is_ok()
                && s.read_to_string(&mut response).is_ok()
                && response.starts_with("HTTP/1.1 200")
            {
                break;
            }
        }
        assert!(!server.is_finished(), "server exited early: {:?}", server.join());
        assert!(Instant::now() < deadline, "front door never became healthy");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Mixed traffic: interactive singletons interleaved with bulk
    // batches of three mutations each (cost 3 against burst 5, refill
    // 1/s — the first batch fits, later ones must shed).
    let mut interactive_accepted = 0usize;
    let mut bulk_accepted = 0usize;
    let mut bulk_shed = 0usize;
    for i in 0..20u32 {
        let (head, body) = request(
            &addr,
            "POST",
            "/update",
            "X-Client-Class: interactive\r\n",
            &format!("{{\"src\":3,\"dst\":{},\"weight\":1.0}}", i % 4),
        );
        assert!(
            head.starts_with("HTTP/1.1 202"),
            "interactive singleton must never shed: {head} {body}"
        );
        interactive_accepted += 1;

        let batch = format!(
            "{{\"mutations\":[{{\"src\":0,\"dst\":{}}},{{\"src\":1,\"dst\":{}}},\
             {{\"src\":2,\"dst\":{}}}]}}",
            i % 4,
            (i + 1) % 4,
            (i + 2) % 4
        );
        let (head, body) = request(&addr, "POST", "/batch", "X-Client-Class: bulk\r\n", &batch);
        if head.starts_with("HTTP/1.1 202") {
            bulk_accepted += 1;
        } else {
            assert!(head.starts_with("HTTP/1.1 429"), "{head} {body}");
            assert!(
                head.to_ascii_lowercase().contains("retry-after-ms:"),
                "429 must carry Retry-After-Ms: {head}"
            );
            assert!(body.contains("\"error\":\"retry_after\""), "{body}");
            assert!(body.contains("\"class\":\"bulk\""), "{body}");
            bulk_shed += 1;
        }
    }
    assert!(bulk_accepted >= 1, "burst capacity admits the first batch");
    assert!(bulk_shed > 0, "offered bulk load must exceed the bucket");

    // Queries keep answering under overload.
    let (head, body) = request(&addr, "GET", "/query?vertex=0", "", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head} {body}");

    // The gate: scrape /metrics/json from the door itself.
    let (head, metrics) = request(&addr, "GET", "/metrics/json", "", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        json_number(&metrics, "graphbolt_shed_interactive_total"),
        Some(0.0),
        "interactive traffic must never shed: {metrics}"
    );
    assert_eq!(
        json_number(&metrics, "graphbolt_admit_interactive_total"),
        Some(interactive_accepted as f64 + 1.0), // +1: the query above
    );
    let scraped_bulk_shed = json_number(&metrics, "graphbolt_shed_bulk_total").unwrap();
    assert_eq!(scraped_bulk_shed, bulk_shed as f64, "{metrics}");
    assert!(
        json_number(&metrics, "graphbolt_retry_after_bulk_total").unwrap() >= 1.0,
        "{metrics}"
    );
    assert!(
        json_number(&metrics, "graphbolt_singleton_fast_path_total").unwrap()
            >= interactive_accepted as f64,
        "{metrics}"
    );
    let visible = histogram_field(&metrics, "graphbolt_ingest_visible_latency_ns", "count")
        .expect("ingest-visible histogram present");
    assert!(visible >= 1.0, "admitted mutations must become visible");
    let p99 = histogram_field(&metrics, "graphbolt_ingest_visible_latency_ns", "p99").unwrap();
    assert!(
        p99 <= SLO_P99_NS,
        "ingest->visible p99 {:.3} ms blows the {:.0} ms SLO",
        p99 / 1e6,
        SLO_P99_NS / 1e6
    );

    // The causal-tracing gate: after the mixed-traffic run the flight
    // recorder must hold complete span trees with no orphaned spans,
    // and refinement must have produced a critical-path report.
    let (head, flight) = request(&addr, "GET", "/debug/flight", "", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        json_number(&flight, "orphans"),
        Some(0.0),
        "orphaned spans mean a hop lost its trace context: {flight}"
    );
    assert!(
        flight.contains("\"kind\":\"request\""),
        "the ring must hold completed request trees: {flight}"
    );
    assert!(
        flight.contains("\"name\":\"queue\"") && flight.contains("\"name\":\"service\""),
        "queue and service time must be separately attributed: {flight}"
    );
    let (head, critical) = request(&addr, "GET", "/debug/critical", "", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        json_number(&critical, "batches").unwrap() >= 1.0,
        "a zero critical-path report means batch attribution is dead: {critical}"
    );
    assert!(
        json_number(&critical, "total_ns").unwrap() > 0.0,
        "the attributed batch must have a wall clock: {critical}"
    );

    // Preserve the flight dump for the CI artifact when the job asks.
    if let Ok(path) = std::env::var("GBOLT_FLIGHT_DUMP") {
        std::fs::write(&path, format!("{flight}\n{critical}\n")).expect("write flight dump");
    }

    let (head, _) = request(&addr, "POST", "/shutdown", "", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let report = server.join().unwrap().unwrap();
    assert!(
        report.contains("front door: http://"),
        "report must name the bound endpoint:\n{report}"
    );
    assert!(report.contains("admission[bulk]:"), "{report}");
    assert!(report.contains("ingest->visible latency: p99"), "{report}");
}
