//! Serve-mode observability acceptance: a session run with
//! `--metrics-addr` must answer `/metrics` with well-formed Prometheus
//! text exposing the refinement-latency histogram, edge-computation
//! counters, and the queue/degrade gauges — scraped here over real TCP
//! after replaying a known mutation stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use graphbolt_cli::{run, Options};
use graphbolt_graph::{io, Edge, MutationBatch};

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("headers + body");
    (head.to_string(), body.to_string())
}

/// Every non-comment line of a Prometheus text exposition must be
/// `name[{labels}] value` with a numeric value; `# HELP`/`# TYPE`
/// comments must name a `graphbolt_`-prefixed metric.
fn assert_valid_prometheus(body: &str) {
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().unwrap_or_default();
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unexpected comment: {line}"
            );
            let name = words.next().unwrap_or_default();
            assert!(
                name.starts_with("graphbolt_"),
                "metric {name} misses the graphbolt_ prefix: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = series.split('{').next().unwrap();
        assert!(
            name.starts_with("graphbolt_")
                && name
                    .trim_start_matches("graphbolt_")
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_'),
            "malformed series name in: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "non-numeric sample value in: {line}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition must not be empty:\n{body}");
}

fn sample_value(body: &str, series_prefix: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(series_prefix))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn serve_mode_exposes_scrapable_metrics() {
    let dir = std::env::temp_dir().join("gbolt-metrics-scrape");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("g.txt");
    io::write_edge_list(
        &graph_path,
        &[
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 0, 1.0),
            Edge::new(2, 3, 1.0),
        ],
    )
    .unwrap();
    // A known stream: one insertion batch, one deletion batch.
    let mut b1 = MutationBatch::new();
    b1.add(Edge::new(3, 0, 1.0));
    let mut b2 = MutationBatch::new();
    b2.delete(Edge::new(2, 3, 1.0));
    let stream_path = dir.join("s.gbms");
    io::write_batches(&stream_path, &[b1, b2]).unwrap();
    let trace_path = dir.join("trace.jsonl");

    let report = run(&Options {
        algorithm: "pagerank".into(),
        graph: graph_path.to_string_lossy().into_owned(),
        stream: Some(stream_path.to_string_lossy().into_owned()),
        serve: true,
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_out: Some(trace_path.to_string_lossy().into_owned()),
        ..Options::default()
    })
    .unwrap();

    // The report names the bound endpoint (port 0 was resolved).
    let addr = report
        .lines()
        .find_map(|l| l.strip_prefix("metrics endpoint: http://"))
        .and_then(|l| l.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("no metrics endpoint line in report:\n{report}"))
        .to_string();

    let (head, body) = http_get(&addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.contains("text/plain"),
        "Prometheus text content type expected: {head}"
    );
    assert_valid_prometheus(&body);

    // The acceptance series: refinement-latency histogram, edge
    // counters, queue occupancy, degrade level.
    assert!(
        body.contains("graphbolt_batch_refine_ns_bucket{le=\""),
        "refinement latency histogram missing:\n{body}"
    );
    assert!(sample_value(&body, "graphbolt_batch_refine_ns_count").unwrap() >= 2.0);
    assert!(
        sample_value(&body, "graphbolt_edge_computations_total").unwrap() > 0.0,
        "edge computations must be counted"
    );
    assert!(sample_value(&body, "graphbolt_mutations_applied_total").unwrap() >= 2.0);
    assert!(sample_value(&body, "graphbolt_queue_occupancy").is_some());
    assert_eq!(sample_value(&body, "graphbolt_degrade_level"), Some(0.0));
    assert!(
        sample_value(&body, "graphbolt_refine_tag_ns_count").unwrap() > 0.0,
        "per-phase refinement histograms must be populated"
    );

    // Liveness and JSON exposition on the same endpoint.
    let (head, body) = http_get(&addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");
    let (head, body) = http_get(&addr, "/metrics/json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.starts_with('{') && body.trim_end().ends_with('}'), "{body}");
    assert!(body.contains("\"graphbolt_batches_applied_total\""), "{body}");

    // The stats subcommand scrapes the same endpoint.
    let stats = run(&Options {
        algorithm: "stats".into(),
        metrics_addr: Some(addr.clone()),
        ..Options::default()
    })
    .unwrap();
    assert!(stats.contains("graphbolt_batch_refine_ns"), "{stats}");

    // --trace-out produced one JSON object per line covering the
    // session lifecycle.
    let trace = std::fs::read_to_string(Path::new(&trace_path)).unwrap();
    assert!(!trace.is_empty(), "trace file must not be empty");
    for line in trace.lines() {
        assert!(
            line.starts_with("{\"event\":\"") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
    }
    assert!(trace.contains("\"event\":\"session_started\""), "{trace}");
    assert!(trace.contains("\"event\":\"batch_applied\""), "{trace}");
    assert!(trace.contains("\"event\":\"session_shutdown\""), "{trace}");
}
