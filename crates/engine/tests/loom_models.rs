//! Exhaustive-interleaving models for the engine's lock-free primitives.
//!
//! Compiled only under `--features loom-check`, where `AtomicBitSet`,
//! `StripedCounter`, and `WorkCounter` are built on loom's model-checked
//! atomics: `loom::model` re-runs each closure once per distinct thread
//! interleaving (every atomic access is a preemption point), so the
//! assertions below hold for *every* schedule, not just the ones a lucky
//! stress test happens to hit.
//!
//! Run with:
//!
//! ```text
//! cargo test -p graphbolt-engine --features loom-check --test loom_models
//! ```
//!
//! The vendored loom explores sequentially-consistent interleavings
//! (see vendor-stubs/README.md for the documented deviations from
//! upstream loom's C11 weak-memory simulation); the invariants modeled
//! here — test-and-set uniqueness, no lost `fetch_or`/`fetch_add`
//! updates, and value-before-bit publication — are exactly the ones the
//! refinement engine's BSP iterations rely on.

#![cfg(feature = "loom-check")]

use graphbolt_engine::bitset::AtomicBitSet;
use graphbolt_engine::parallel::{StripedCounter, WorkCounter};
use loom::sync::Arc;
use loom::thread;

/// §4.2 frontier building: many edge-map workers race to claim a
/// destination vertex via `set`; exactly one must win, under every
/// interleaving, or a vertex would be processed twice (or never).
#[test]
fn bitset_test_and_set_has_exactly_one_winner() {
    loom::model(|| {
        let bits = Arc::new(AtomicBitSet::new(64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let bits = Arc::clone(&bits);
                thread::spawn(move || bits.set(7))
            })
            .collect();
        let wins: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("model thread"))
            .collect();
        assert_eq!(
            wins.iter().filter(|w| **w).count(),
            1,
            "exactly one claimant may win test-and-set"
        );
        assert!(bits.get(7));
    });
}

/// Two workers setting different bits of the *same* word: the
/// read-modify-write `fetch_or` must never lose either update (a plain
/// load/store word update would, under the right interleaving).
#[test]
fn bitset_sets_to_one_word_are_never_lost() {
    loom::model(|| {
        let bits = Arc::new(AtomicBitSet::new(64));
        let a = {
            let bits = Arc::clone(&bits);
            thread::spawn(move || bits.set(3))
        };
        let b = {
            let bits = Arc::clone(&bits);
            thread::spawn(move || bits.set(5))
        };
        a.join().expect("model thread");
        b.join().expect("model thread");
        assert_eq!(bits.word(0), (1 << 3) | (1 << 5));
        assert_eq!(bits.count(), 2);
    });
}

/// The publication ordering refinement depends on: a worker writes a
/// vertex's result *then* marks it changed. A reader that observes the
/// changed bit must also observe the value write; observing the bit
/// without the value would make `refine` consume a stale aggregate.
/// `AtomicBitSet::set`/`get` are a release/acquire pair precisely so
/// this holds without waiting for the superstep barrier.
#[test]
fn changed_bit_publishes_after_value_write() {
    loom::model(|| {
        let value = Arc::new(WorkCounter::new());
        let changed = Arc::new(AtomicBitSet::new(64));
        let writer = {
            let (value, changed) = (Arc::clone(&value), Arc::clone(&changed));
            thread::spawn(move || {
                value.set(42);
                changed.set(0);
            })
        };
        let reader = {
            let (value, changed) = (Arc::clone(&value), Arc::clone(&changed));
            thread::spawn(move || {
                if changed.get(0) {
                    assert_eq!(value.get(), 42, "changed bit visible before its value");
                }
            })
        };
        writer.join().expect("model thread");
        reader.join().expect("model thread");
    });
}

/// Striped counters: concurrent `add`s on aliasing and non-aliasing
/// stripes fold to an exact total under every interleaving (integer
/// adds commute; `fetch_add` never loses an update).
#[test]
fn striped_counter_totals_are_exact() {
    loom::model(|| {
        let counter = Arc::new(StripedCounter::new());
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.add(t, 1);
                    counter.add(t + 1, 2);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(counter.sum(), 6);
    });
}

/// WorkCounter (the single-stripe publication counter used by
/// `edge_map`): concurrent per-chunk publications never lose a delta.
#[test]
fn work_counter_publications_are_never_lost() {
    loom::model(|| {
        let counter = Arc::new(WorkCounter::new());
        let handles: Vec<_> = (1..=2)
            .map(|t| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || counter.add(t))
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(counter.get(), 3);
    });
}
