//! Profiling hooks: a process-global, install-once observer for
//! `edge_map` timings.
//!
//! The engine sits below the telemetry registry in the crate graph, so it
//! cannot record into `graphbolt_core::telemetry` directly. Instead it
//! exposes a plain-`fn` hook: the telemetry layer installs a recorder at
//! registry initialization, and every `edge_map` call afterwards reports
//! one [`EdgeMapSample`]. When no hook is installed — the default, and
//! the state every benchmark runs in — the cost on the `edge_map` hot
//! path is a single `OnceLock` load-and-branch per *call* (not per
//! edge), and no clocks are read.

use std::sync::OnceLock;

/// Measurements from one `edge_map` invocation.
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapSample {
    /// Wall-clock nanoseconds spent in the call (saturated at `u64::MAX`).
    pub nanos: u64,
    /// `update` invocations performed by the call.
    pub edges: u64,
    /// True when the dense (pull) traversal was selected.
    pub dense: bool,
    /// True when the adaptive controller made the direction decision
    /// (as opposed to a forced or static-heuristic mode).
    pub adaptive: bool,
    /// True when the call was a controller probe of a stale or
    /// unmeasured path.
    pub probe: bool,
    /// True when the post-observation cost model scored the chosen path
    /// as the slower one (routine adaptive picks only).
    pub mispredict: bool,
}

/// Signature of an `edge_map` observer. A plain `fn` keeps installation
/// allocation-free and the hook trivially `Send + Sync`.
pub type EdgeMapHook = fn(EdgeMapSample);

static EDGE_MAP_HOOK: OnceLock<EdgeMapHook> = OnceLock::new();

/// Installs the process-global `edge_map` observer. The first
/// installation wins and is permanent (the hook lives for the process);
/// returns false if a hook was already installed.
pub fn install_edge_map_hook(hook: EdgeMapHook) -> bool {
    EDGE_MAP_HOOK.set(hook).is_ok()
}

/// The installed hook, if any. One load-and-branch on the miss path.
#[inline]
pub(crate) fn edge_map_hook() -> Option<EdgeMapHook> {
    EDGE_MAP_HOOK.get().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_install_is_rejected() {
        fn h(_: EdgeMapSample) {}
        // Whichever test in the process installed first, a repeat install
        // of `h` after `h` is in place must report failure.
        install_edge_map_hook(h);
        assert!(!install_edge_map_hook(h));
        assert!(edge_map_hook().is_some());
    }
}
