//! Thin data-parallel layer.
//!
//! All parallel loops in the workspace go through this module so that (a)
//! thread count is controllable for the scalability experiments (Table 6
//! of the paper swaps a 32-core for a 96-core machine; we sweep threads
//! instead), and (b) the engine degrades gracefully to sequential
//! execution for deterministic tests.

// Under `loom-check` the counters' atomics become loom's model-checked
// versions so tests/loom_models.rs can exhaustively explore publication
// interleavings.
#[cfg(feature = "loom-check")]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "loom-check"))]
use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

/// Returns the number of worker threads rayon will use by default.
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `f` inside a dedicated pool of `threads` workers. Used by the
/// Table 6 harness to sweep parallelism without re-initializing the
/// global pool.
///
/// # Examples
///
/// ```
/// let sum = graphbolt_engine::parallel::with_threads(2, || {
///     graphbolt_engine::parallel::par_sum(0..100usize, |i| i)
/// });
/// assert_eq!(sum, 4950);
/// ```
/// Sizes the *global* rayon pool to `threads` workers — the CLI
/// `--threads` knob. Must run before the first parallel operation;
/// returns false (leaving the existing pool untouched) when the global
/// pool was already initialized.
pub fn set_global_threads(threads: usize) -> bool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build_global()
        .is_ok()
}

pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Parallel for over an index range.
#[inline]
pub fn par_for<F>(range: std::ops::Range<usize>, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    range.into_par_iter().for_each(f);
}

/// Parallel map over an index range, collecting results in order.
#[inline]
pub fn par_map<T, F>(range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    range.into_par_iter().map(f).collect()
}

/// Parallel sum of `f(i)` over a range.
#[inline]
pub fn par_sum<T, F, I>(range: I, f: F) -> T
where
    T: Send + std::iter::Sum<T>,
    I: IntoParallelIterator,
    F: Fn(I::Item) -> T + Sync + Send,
{
    range.into_par_iter().map(f).sum()
}

/// Parallel filter-map over an index range; order of results is
/// unspecified.
#[inline]
pub fn par_filter_map<T, F>(range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync + Send,
{
    range.into_par_iter().filter_map(f).collect()
}

/// Parallel for-each over any collection of owned items.
#[inline]
pub fn par_for_each<I, F>(items: I, f: F)
where
    I: IntoParallelIterator,
    F: Fn(I::Item) + Sync + Send,
{
    items.into_par_iter().for_each(f);
}

/// Parallel loop over contiguous chunks of `0..len`: `f(chunk_index,
/// index_range)`. The chunk index doubles as a contention-avoidance hint
/// for [`StripedCounter::add`].
#[inline]
pub fn par_for_chunks<F>(len: usize, chunk: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync + Send,
{
    debug_assert!(chunk > 0);
    let chunks = len.div_ceil(chunk);
    par_for(0..chunks, |c| {
        let lo = c * chunk;
        f(c, lo..((lo + chunk).min(len)));
    });
}

/// Exclusive prefix sum (sequential — used on per-vertex offset arrays
/// where the scan is memory-bound anyway). Returns the total.
pub fn exclusive_prefix_sum(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    acc
}

/// Block size for [`par_exclusive_prefix_sum`]; arrays shorter than one
/// block scan sequentially (the scan is memory-bound, so fine-grained
/// splitting only adds scheduling overhead).
const SCAN_BLOCK: usize = 1 << 14;

/// Parallel exclusive prefix sum over `values`, returning the total.
///
/// Three-phase blocked scan: (1) per-block sums in parallel, (2) a short
/// sequential scan over the block sums, (3) per-block exclusive scans
/// rebased on their block offset, in parallel. Identical output to
/// [`exclusive_prefix_sum`] for every input.
pub fn par_exclusive_prefix_sum(values: &mut [usize]) -> usize {
    if values.len() <= SCAN_BLOCK {
        return exclusive_prefix_sum(values);
    }
    let blocks = values.len().div_ceil(SCAN_BLOCK);
    let mut block_sums = par_map(0..blocks, |b| {
        values[b * SCAN_BLOCK..((b + 1) * SCAN_BLOCK).min(values.len())]
            .iter()
            .sum::<usize>()
    });
    let total = exclusive_prefix_sum(&mut block_sums);
    let tasks: Vec<(&mut [usize], usize)> = values
        .chunks_mut(SCAN_BLOCK)
        .zip(block_sums)
        .collect();
    par_for_each(tasks, |(chunk, offset)| {
        let mut acc = offset;
        for v in chunk.iter_mut() {
            let next = acc + *v;
            *v = acc;
            acc = next;
        }
    });
    total
}

/// Pads the wrapped value out to a cache line so adjacent values never
/// share one (no false sharing between per-stripe counters).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Number of stripes in a [`StripedCounter`]; must be a power of two.
/// Sized for high core counts — the memory cost is one cache line each.
const COUNTER_STRIPES: usize = 64;

/// A contention-free work counter: `add` lands on one of
/// [`COUNTER_STRIPES`] cache-line-padded atomics selected by a caller
/// hint (typically a chunk index), and `sum` folds the stripes.
///
/// The intended discipline — accumulate into a plain local integer inside
/// a work chunk, then publish once per chunk — turns what used to be one
/// `fetch_add` on a single shared atomic *per edge* into one striped
/// `fetch_add` *per chunk*, while keeping totals exact (integer adds are
/// associative and commutative, so totals are independent of both thread
/// count and interleaving).
#[derive(Debug)]
pub struct StripedCounter {
    stripes: Box<[CachePadded<AtomicU64>]>,
}

impl Default for StripedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self {
            stripes: (0..COUNTER_STRIPES).map(|_| CachePadded::default()).collect(),
        }
    }

    /// Adds `delta` to the stripe selected by `hint`. Zero deltas are
    /// skipped so empty chunks cost nothing.
    #[inline]
    pub fn add(&self, hint: usize, delta: u64) {
        if delta != 0 {
            // ordering: counters carry no dependent data; integer adds
            // commute, so Relaxed gives exact totals at minimal cost.
            self.stripes[hint & (COUNTER_STRIPES - 1)]
                .0
                .fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Exact total across all stripes.
    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            // ordering: read after the parallel section joined; the
            // join is the synchronization point, not the load.
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A single cache-line-padded monotonic counter.
///
/// The sanctioned shared-counter primitive for code outside this module:
/// `edge_map` publishes per-call edge work through one, and
/// `EngineStats` aggregates over them, so no other module needs to touch
/// raw `std::sync::atomic` types (the `cargo xtask lint`
/// `unsafe-confined` rule enforces exactly that). Totals are exact:
/// integer adds commute, so the value is independent of thread count and
/// interleaving.
#[derive(Debug, Default)]
pub struct WorkCounter(CachePadded<AtomicU64>);

impl WorkCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`. Zero deltas are skipped so idle paths cost nothing.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta != 0 {
            // ordering: pure counter, no dependent data; commutative
            // adds are exact under Relaxed.
            self.0 .0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: readers run after the workers that bumped the
        // counter joined; the join synchronizes.
        self.0 .0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (counter reset).
    #[inline]
    pub fn set(&self, value: u64) {
        // ordering: reset is single-threaded between phases.
        self.0 .0.store(value, Ordering::Relaxed);
    }

    /// Subtracts `delta` (for gauge-style occupancy tracking). Zero
    /// deltas are skipped to mirror [`WorkCounter::add`]. Wraps on
    /// underflow — callers pair every `sub` with a prior `add`.
    #[inline]
    pub fn sub(&self, delta: u64) {
        if delta != 0 {
            // ordering: pure counter, no dependent data; commutative
            // subtraction is exact under Relaxed.
            self.0 .0.fetch_sub(delta, Ordering::Relaxed);
        }
    }

    /// Atomically reads the value and resets it to zero, returning what
    /// was read. Concurrent `add`s land either in the returned value or
    /// in the fresh epoch — never both, never neither — so periodic
    /// read-and-reset consumers (`EngineStats::take_snapshot`) lose no
    /// counts.
    #[inline]
    pub fn take(&self) -> u64 {
        // ordering: the swap itself is the atomicity guarantee; no
        // dependent data is published through the counter.
        self.0 .0.swap(0, Ordering::Relaxed)
    }

    /// Raises the value to `candidate` if larger (running-maximum
    /// tracking, e.g. a histogram's exact max). A CAS loop rather than
    /// `fetch_max` so the loom model checker (whose atomic stub has no
    /// `fetch_max`) exercises the same code path as production.
    #[inline]
    pub fn record_max(&self, candidate: u64) {
        // ordering: max is commutative and idempotent; Relaxed CAS
        // retries converge to the true maximum regardless of
        // interleaving, and no dependent data rides on the value.
        let mut seen = self.0 .0.load(Ordering::Relaxed);
        while candidate > seen {
            // ordering: Relaxed for both CAS orderings, per above.
            match self.0 .0.compare_exchange_weak(
                seen,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Thousand-element stress tests are skipped under miri (interpreted
    // thread spawns take minutes); the smaller tests below cover the
    // same code paths at miri-friendly scale.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn par_for_visits_every_index() {
        let hits = AtomicUsize::new(0);
        par_for(0..1000, |_| {
            // ordering: test counter; the par_for join synchronizes
            // before the assert's read.
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // ordering: read after join.
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(0..100, |i| i * 2);
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 198);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn par_sum_matches_sequential() {
        let s: usize = par_sum(0..1000usize, |i| i);
        assert_eq!(s, 499_500);
    }

    #[test]
    fn with_threads_single_thread_works() {
        let r = with_threads(1, || par_map(0..10, |i| i).len());
        assert_eq!(r, 10);
    }

    #[test]
    fn exclusive_prefix_sum_returns_total() {
        let mut v = vec![3, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 3, 3, 5]);
    }

    #[test]
    fn par_filter_map_filters() {
        let mut v = par_filter_map(0..100, |i| (i % 10 == 0).then_some(i));
        v.sort_unstable();
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn par_for_chunks_covers_range_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_for_chunks(1000, 64, |_, range| {
            for i in range {
                // ordering: test counter; join synchronizes before the
                // assert's read below.
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        // ordering: read after join.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn par_prefix_sum_matches_sequential() {
        // Longer than one block so the parallel path actually splits.
        let src: Vec<usize> = (0..(SCAN_BLOCK * 3 + 17)).map(|i| i % 7).collect();
        let mut seq = src.clone();
        let mut par = src;
        let t_seq = exclusive_prefix_sum(&mut seq);
        let t_par = par_exclusive_prefix_sum(&mut par);
        assert_eq!(t_seq, t_par);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_prefix_sum_short_input() {
        let mut v = vec![3, 0, 2, 5];
        assert_eq!(par_exclusive_prefix_sum(&mut v), 10);
        assert_eq!(v, vec![0, 3, 3, 5]);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn striped_counter_sums_exactly() {
        let c = StripedCounter::new();
        par_for(0..10_000, |i| c.add(i, (i % 3) as u64));
        let expected: u64 = (0..10_000u64).map(|i| i % 3).sum();
        assert_eq!(c.sum(), expected);
    }

    #[test]
    fn cache_padding_separates_lines() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 64);
    }
}
