//! Thin data-parallel layer.
//!
//! All parallel loops in the workspace go through this module so that (a)
//! thread count is controllable for the scalability experiments (Table 6
//! of the paper swaps a 32-core for a 96-core machine; we sweep threads
//! instead), and (b) the engine degrades gracefully to sequential
//! execution for deterministic tests.

use rayon::prelude::*;

/// Returns the number of worker threads rayon will use by default.
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `f` inside a dedicated pool of `threads` workers. Used by the
/// Table 6 harness to sweep parallelism without re-initializing the
/// global pool.
///
/// # Examples
///
/// ```
/// let sum = graphbolt_engine::parallel::with_threads(2, || {
///     graphbolt_engine::parallel::par_sum(0..100usize, |i| i)
/// });
/// assert_eq!(sum, 4950);
/// ```
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Parallel for over an index range.
#[inline]
pub fn par_for<F>(range: std::ops::Range<usize>, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    range.into_par_iter().for_each(f);
}

/// Parallel map over an index range, collecting results in order.
#[inline]
pub fn par_map<T, F>(range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    range.into_par_iter().map(f).collect()
}

/// Parallel sum of `f(i)` over a range.
#[inline]
pub fn par_sum<T, F, I>(range: I, f: F) -> T
where
    T: Send + std::iter::Sum<T>,
    I: IntoParallelIterator,
    F: Fn(I::Item) -> T + Sync + Send,
{
    range.into_par_iter().map(f).sum()
}

/// Parallel filter-map over an index range; order of results is
/// unspecified.
#[inline]
pub fn par_filter_map<T, F>(range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync + Send,
{
    range.into_par_iter().filter_map(f).collect()
}

/// Exclusive prefix sum (sequential — used on per-vertex offset arrays
/// where the scan is memory-bound anyway). Returns the total.
pub fn exclusive_prefix_sum(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index() {
        let hits = AtomicUsize::new(0);
        par_for(0..1000, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(0..100, |i| i * 2);
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 198);
    }

    #[test]
    fn par_sum_matches_sequential() {
        let s: usize = par_sum(0..1000usize, |i| i);
        assert_eq!(s, 499_500);
    }

    #[test]
    fn with_threads_single_thread_works() {
        let r = with_threads(1, || par_map(0..10, |i| i).len());
        assert_eq!(r, 10);
    }

    #[test]
    fn exclusive_prefix_sum_returns_total() {
        let mut v = vec![3, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(total, 10);
        assert_eq!(v, vec![0, 3, 3, 5]);
    }

    #[test]
    fn par_filter_map_filters() {
        let mut v = par_filter_map(0..100, |i| (i % 10 == 0).then_some(i));
        v.sort_unstable();
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }
}
