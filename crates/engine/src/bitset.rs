//! Lock-free concurrent bit set.

// Under `loom-check` the words become loom's model-checked atomics so
// tests/loom_models.rs can exhaustively explore set/test interleavings.
#[cfg(feature = "loom-check")]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "loom-check"))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::parallel;

/// A fixed-capacity bit set supporting concurrent set/test from parallel
/// edge-map workers.
///
/// Dense frontiers and the "changed at cut-off iteration" vector of
/// hybrid execution (§4.2 of the paper) are represented this way: one bit
/// per vertex. [`set`](Self::set) and [`get`](Self::get) form a
/// release/acquire pair, so a reader that observes a bit also observes
/// every write the setter made before setting it — workers may publish a
/// vertex's value and then its changed bit without waiting for the BSP
/// barrier. Bulk operations (`word`, `count`, iteration, `reset`) stay
/// relaxed; they are only used after a barrier has already ordered the
/// preceding superstep.
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    capacity: usize,
}

impl AtomicBitSet {
    /// Creates a cleared bit set with room for `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(64);
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            capacity,
        }
    }

    /// Number of bits the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`, returning `true` if it was previously clear.
    /// Safe to call concurrently.
    ///
    /// Release ordering: writes made before `set(i)` are visible to any
    /// thread that subsequently observes bit `i` via [`get`](Self::get).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let mask = 1u64 << (i & 63);
        let prev = self.words[i >> 6].fetch_or(mask, Ordering::Release);
        prev & mask == 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.capacity);
        let mask = 1u64 << (i & 63);
        // ordering: clearing publishes no data; callers synchronize
        // phase boundaries externally (frontier swap), so Relaxed is
        // enough for the bit itself.
        self.words[i >> 6].fetch_and(!mask, Ordering::Relaxed);
    }

    /// Tests bit `i`.
    ///
    /// Acquire ordering: pairs with the release in [`set`](Self::set),
    /// so observing a set bit also makes the setter's prior writes
    /// visible.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i >> 6].load(Ordering::Acquire) & (1u64 << (i & 63)) != 0
    }

    /// Number of set bits.
    ///
    /// Memory ordering: counting is only meaningful once concurrent
    /// setters have quiesced (between supersteps); Relaxed loads read
    /// the final values without pointless fences.
    pub fn count(&self) -> usize {
        if self.words.len() >= PAR_BLOCK_WORDS * 2 {
            return parallel::par_sum(0..self.words.len(), |wi| {
                // ordering: see above — quiescent-phase read.
                self.words[wi].load(Ordering::Relaxed).count_ones() as usize
            });
        }
        self.words
            .iter()
            // ordering: see above — quiescent-phase read.
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Number of 64-bit words backing the set.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Raw word `wi` (bits `wi * 64 .. wi * 64 + 64`).
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        // ordering: raw-word access is a quiescent-phase read; callers
        // (frontier sweeps) run after all setters joined.
        self.words[wi].load(Ordering::Relaxed)
    }

    /// Clears all bits.
    pub fn reset(&self) {
        for w in &self.words {
            // ordering: reset happens single-threaded between phases;
            // the next superstep's thread-spawn synchronizes.
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            // ordering: iteration is a quiescent-phase read (all
            // setters joined before the frontier is consumed).
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Collects set bits into a vector, ascending.
    ///
    /// Large sets convert in parallel: block-wise popcount, an exclusive
    /// prefix sum over the block counts, then a scatter where each block
    /// writes its indices into a disjoint, pre-sized slice of the output.
    /// Output is identical to the sequential walk (ascending order) — the
    /// prefix sum fixes each block's output position up front.
    pub fn to_vec(&self) -> Vec<usize> {
        if self.words.len() < PAR_BLOCK_WORDS * 2 {
            return self.iter().collect();
        }
        let blocks = self.words.len().div_ceil(PAR_BLOCK_WORDS);
        let mut offsets = parallel::par_map(0..blocks, |b| {
            self.words[b * PAR_BLOCK_WORDS..((b + 1) * PAR_BLOCK_WORDS).min(self.words.len())]
                .iter()
                // ordering: quiescent-phase read (setters joined
                // before conversion starts).
                .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
                .sum::<usize>()
        });
        let total = parallel::exclusive_prefix_sum(&mut offsets);
        let mut out = vec![0usize; total];
        let mut tail: &mut [usize] = &mut out;
        let mut tasks: Vec<(usize, &mut [usize])> = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let end = offsets.get(b + 1).copied().unwrap_or(total);
            let (head, rest) = tail.split_at_mut(end - offsets[b]);
            tasks.push((b, head));
            tail = rest;
        }
        parallel::par_for_each(tasks, |(b, slot)| {
            let mut cursor = 0;
            let lo = b * PAR_BLOCK_WORDS;
            let hi = (lo + PAR_BLOCK_WORDS).min(self.words.len());
            for wi in lo..hi {
                // ordering: quiescent-phase read; the popcount pass
                // above already fixed this block's output size.
                let mut bits = self.words[wi].load(Ordering::Relaxed);
                while bits != 0 {
                    slot[cursor] = wi * 64 + bits.trailing_zeros() as usize;
                    cursor += 1;
                    bits &= bits - 1;
                }
            }
            debug_assert_eq!(cursor, slot.len());
        });
        out
    }
}

/// Words per parallel-conversion block (256 words = 16 Kbit ≈ one L1-ish
/// tile); sets smaller than two blocks take the sequential path.
const PAR_BLOCK_WORDS: usize = 256;

impl Clone for AtomicBitSet {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                // ordering: cloning from `&self` cannot race with
                // mutation through the same reference holder's phase
                // discipline; Relaxed snapshots each word.
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let bs = AtomicBitSet::new(130);
        assert!(bs.set(0));
        assert!(bs.set(64));
        assert!(bs.set(129));
        assert!(!bs.set(64), "second set reports already-set");
        assert!(bs.get(129));
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let bs = AtomicBitSet::new(200);
        for i in [5usize, 63, 64, 150, 199] {
            bs.set(i);
        }
        assert_eq!(bs.to_vec(), vec![5, 63, 64, 150, 199]);
    }

    #[test]
    fn reset_clears_everything() {
        let bs = AtomicBitSet::new(100);
        for i in 0..100 {
            bs.set(i);
        }
        bs.reset();
        assert_eq!(bs.count(), 0);
    }

    // Skipped under miri: 10k interpreted cross-thread sets take
    // minutes; `set_get_clear` and friends cover the atomics at
    // miri-friendly scale.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn concurrent_sets_count_correctly() {
        use std::sync::Arc;
        let bs = Arc::new(AtomicBitSet::new(10_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bs = Arc::clone(&bs);
                std::thread::spawn(move || {
                    for i in (t..10_000).step_by(4) {
                        bs.set(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bs.count(), 10_000);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn parallel_to_vec_matches_sequential_iter() {
        // Big enough to take the blocked parallel path (> 2 blocks of
        // words), with an irregular pattern crossing block boundaries.
        let n = PAR_BLOCK_WORDS * 64 * 3 + 101;
        let bs = AtomicBitSet::new(n);
        for i in (0..n).filter(|i| i % 7 == 0 || i % 1013 == 5) {
            bs.set(i);
        }
        let expected: Vec<usize> = bs.iter().collect();
        assert_eq!(bs.to_vec(), expected);
        assert_eq!(bs.count(), expected.len());
    }

    #[test]
    fn clone_snapshots_current_state() {
        let bs = AtomicBitSet::new(10);
        bs.set(3);
        let copy = bs.clone();
        bs.set(4);
        assert!(copy.get(3));
        assert!(!copy.get(4));
    }
}
