//! Lock-free concurrent bit set.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bit set supporting concurrent set/test from parallel
/// edge-map workers.
///
/// Dense frontiers and the "changed at cut-off iteration" vector of
/// hybrid execution (§4.2 of the paper) are represented this way: one bit
/// per vertex, set with relaxed atomics (the BSP barrier at the end of
/// each iteration provides the necessary ordering).
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    capacity: usize,
}

impl AtomicBitSet {
    /// Creates a cleared bit set with room for `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        let words = (capacity + 63) / 64;
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            capacity,
        }
    }

    /// Number of bits the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`, returning `true` if it was previously clear.
    /// Safe to call concurrently.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let mask = 1u64 << (i & 63);
        let prev = self.words[i >> 6].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.capacity);
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].fetch_and(!mask, Ordering::Relaxed);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i >> 6].load(Ordering::Relaxed) & (1u64 << (i & 63)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Clears all bits.
    pub fn reset(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Collects set bits into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl Clone for AtomicBitSet {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let bs = AtomicBitSet::new(130);
        assert!(bs.set(0));
        assert!(bs.set(64));
        assert!(bs.set(129));
        assert!(!bs.set(64), "second set reports already-set");
        assert!(bs.get(129));
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let bs = AtomicBitSet::new(200);
        for i in [5usize, 63, 64, 150, 199] {
            bs.set(i);
        }
        assert_eq!(bs.to_vec(), vec![5, 63, 64, 150, 199]);
    }

    #[test]
    fn reset_clears_everything() {
        let bs = AtomicBitSet::new(100);
        for i in 0..100 {
            bs.set(i);
        }
        bs.reset();
        assert_eq!(bs.count(), 0);
    }

    #[test]
    fn concurrent_sets_count_correctly() {
        use std::sync::Arc;
        let bs = Arc::new(AtomicBitSet::new(10_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bs = Arc::clone(&bs);
                std::thread::spawn(move || {
                    for i in (t..10_000).step_by(4) {
                        bs.set(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bs.count(), 10_000);
    }

    #[test]
    fn clone_snapshots_current_state() {
        let bs = AtomicBitSet::new(10);
        bs.set(3);
        let copy = bs.clone();
        bs.set(4);
        assert!(copy.get(3));
        assert!(!copy.get(4));
    }
}
