//! Direction-optimizing `edge_map`.

use std::sync::atomic::{AtomicU64, Ordering};

use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

use crate::bitset::AtomicBitSet;
use crate::parallel;
use crate::subset::VertexSubset;

/// Tuning knobs for [`edge_map`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapOptions {
    /// A frontier is processed densely (pull) when
    /// `|F| + outdeg(F) > |E| / denominator` — Ligra's heuristic with
    /// denominator 20.
    pub dense_denominator: usize,
    /// Force push (sparse) traversal regardless of density.
    pub force_sparse: bool,
    /// Force pull (dense) traversal regardless of density.
    pub force_dense: bool,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        Self {
            dense_denominator: 20,
            force_sparse: false,
            force_dense: false,
        }
    }
}

impl EdgeMapOptions {
    /// Options forcing push-based traversal.
    pub fn sparse() -> Self {
        Self {
            force_sparse: true,
            ..Self::default()
        }
    }

    /// Options forcing pull-based traversal.
    pub fn dense() -> Self {
        Self {
            force_dense: true,
            ..Self::default()
        }
    }
}

/// Applies `update` over every edge leaving the frontier, returning the
/// subset of destinations for which `update` returned `true` (and for
/// which `cond` held before application).
///
/// * **Sparse (push)**: for each frontier vertex `u`, each out-edge
///   `(u, v, w)` with `cond(v)` gets `update(u, v, w)`. `update` must be
///   safe under concurrent invocation for the *same* `v` (use atomics or
///   CAS loops, as in Ligra).
/// * **Dense (pull)**: every vertex `v` with `cond(v)` scans its in-edges
///   and applies `update(u, v, w)` for in-neighbors `u` in the frontier.
///   Calls for a given `v` are sequential, so `update` needs no
///   synchronization on the destination.
///
/// The edge-computation counter (`edge_work`) is incremented once per
/// `update` invocation; the evaluation's Figure 6 / Table 7 read it.
pub fn edge_map<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    opts: EdgeMapOptions,
    edge_work: &AtomicU64,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    if frontier.is_empty() {
        return VertexSubset::empty(n);
    }
    let use_dense = if opts.force_sparse {
        false
    } else if opts.force_dense {
        true
    } else {
        let work = frontier.len() + frontier.out_degree_sum(g);
        work > g.num_edges() / opts.dense_denominator.max(1)
    };
    if use_dense {
        edge_map_dense(g, frontier, update, cond, edge_work)
    } else {
        edge_map_sparse(g, frontier, update, cond, edge_work)
    }
}

fn edge_map_sparse<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    edge_work: &AtomicU64,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let next = AtomicBitSet::new(n);
    let ids: Vec<VertexId> = frontier.iter().collect();
    let work = AtomicU64::new(0);
    parallel::par_for(0..ids.len(), |i| {
        let u = ids[i];
        for (v, w) in g.out_edges(u) {
            if cond(v) {
                work.fetch_add(1, Ordering::Relaxed);
                if update(u, v, w) {
                    next.set(v as usize);
                }
            }
        }
    });
    edge_work.fetch_add(work.load(Ordering::Relaxed), Ordering::Relaxed);
    VertexSubset::from_bits(next).into_sparse()
}

fn edge_map_dense<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    edge_work: &AtomicU64,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let in_frontier = frontier.clone().into_dense();
    let next = AtomicBitSet::new(n);
    let work = AtomicU64::new(0);
    parallel::par_for(0..n, |vi| {
        let v = vi as VertexId;
        if !cond(v) {
            return;
        }
        let mut activated = false;
        for (u, w) in g.in_edges(v) {
            if in_frontier.contains(u) {
                work.fetch_add(1, Ordering::Relaxed);
                if update(u, v, w) {
                    activated = true;
                }
            }
        }
        if activated {
            next.set(vi);
        }
    });
    edge_work.fetch_add(work.load(Ordering::Relaxed), Ordering::Relaxed);
    VertexSubset::from_bits(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::GraphBuilder;
    use std::sync::atomic::AtomicU32;

    fn chain(n: usize) -> GraphSnapshot {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b = b.add_edge(i as VertexId, i as VertexId + 1, 1.0);
        }
        b.build()
    }

    fn bfs_layers(g: &GraphSnapshot, opts: EdgeMapOptions) -> Vec<i32> {
        let n = g.num_vertices();
        let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        level[0].store(0, Ordering::Relaxed);
        let mut frontier = VertexSubset::from_ids(n, vec![0]);
        let work = AtomicU64::new(0);
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = edge_map(
                g,
                &frontier,
                |_u, v, _w| {
                    level[v as usize]
                        .compare_exchange(u32::MAX, d, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                },
                |v| level[v as usize].load(Ordering::Relaxed) == u32::MAX,
                opts,
                &work,
            );
        }
        level
            .iter()
            .map(|l| {
                let v = l.load(Ordering::Relaxed);
                if v == u32::MAX {
                    -1
                } else {
                    v as i32
                }
            })
            .collect()
    }

    #[test]
    fn sparse_and_dense_bfs_agree() {
        let g = chain(50);
        let sparse = bfs_layers(&g, EdgeMapOptions::sparse());
        let dense = bfs_layers(&g, EdgeMapOptions::dense());
        assert_eq!(sparse, dense);
        assert_eq!(sparse[49], 49);
    }

    #[test]
    fn edge_work_counts_update_calls() {
        let g = chain(10);
        let work = AtomicU64::new(0);
        let frontier = VertexSubset::full(10);
        edge_map(
            &g,
            &frontier,
            |_u, _v, _w| false,
            |_| true,
            EdgeMapOptions::dense(),
            &work,
        );
        assert_eq!(work.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn cond_filters_destinations() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .build();
        let work = AtomicU64::new(0);
        let frontier = VertexSubset::from_ids(3, vec![0]);
        let next = edge_map(
            &g,
            &frontier,
            |_u, _v, _w| true,
            |v| v != 1,
            EdgeMapOptions::sparse(),
            &work,
        );
        assert_eq!(next.to_ids(), vec![2]);
        assert_eq!(work.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let g = chain(5);
        let work = AtomicU64::new(0);
        let next = edge_map(
            &g,
            &VertexSubset::empty(5),
            |_u, _v, _w| true,
            |_| true,
            EdgeMapOptions::default(),
            &work,
        );
        assert!(next.is_empty());
        assert_eq!(work.load(Ordering::Relaxed), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        /// Push and pull traversal of the same frontier activate exactly
        /// the same destination set on arbitrary graphs — the direction
        /// optimization must be purely a performance choice.
        #[test]
        fn push_and_pull_activate_identical_sets(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3..30usize);
            let mut b = graphbolt_graph::GraphBuilder::new(n);
            for _ in 0..n * 2 {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, 1.0);
                }
            }
            let g = b.build();
            let members: Vec<VertexId> = (0..n as VertexId)
                .filter(|_| rng.gen_bool(0.4))
                .collect();
            let frontier = VertexSubset::from_ids(n, members);
            let blocked: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();

            let run = |opts: EdgeMapOptions| -> Vec<VertexId> {
                let work = AtomicU64::new(0);
                edge_map(
                    &g,
                    &frontier,
                    |_u, _v, _w| true,
                    |v| !blocked[v as usize],
                    opts,
                    &work,
                )
                .to_ids()
            };
            let pushed = run(EdgeMapOptions::sparse());
            let pulled = run(EdgeMapOptions::dense());
            proptest::prop_assert_eq!(pushed, pulled);
        }
    }

    #[test]
    fn auto_mode_picks_dense_for_large_frontier() {
        // A full frontier on a dense-ish graph must still produce the same
        // activation set as forced modes.
        let mut b = GraphBuilder::new(20);
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j {
                    b = b.add_edge(i, j, 1.0);
                }
            }
        }
        let g = b.build();
        let work = AtomicU64::new(0);
        let frontier = VertexSubset::full(20);
        let next = edge_map(
            &g,
            &frontier,
            |_u, _v, _w| true,
            |_| true,
            EdgeMapOptions::default(),
            &work,
        );
        assert_eq!(next.len(), 20);
    }
}
