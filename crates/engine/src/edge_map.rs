//! Direction-optimizing `edge_map`.

use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

use crate::bitset::AtomicBitSet;
use crate::parallel;
use crate::subset::VertexSubset;

/// Direction-selection policy for [`edge_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Always push along out-edges.
    Sparse,
    /// Always pull along in-edges.
    Dense,
    /// Ligra's fixed density heuristic:
    /// `|F| + outdeg(F) > |E| / dense_denominator`.
    Static,
    /// Online cost model (see [`crate::adaptive`]): pick the path with
    /// the lower predicted cost from measured per-unit throughput,
    /// falling back to the static heuristic until measurements exist.
    #[default]
    Adaptive,
}

/// Tuning knobs for [`edge_map`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapOptions {
    /// Denominator of the static density cut-off — a frontier is
    /// processed densely (pull) when `|F| + outdeg(F) > |E| /
    /// denominator` (Ligra uses 20). Consulted by [`Mode::Static`] and
    /// by [`Mode::Adaptive`] before the controller has measurements.
    pub dense_denominator: usize,
    /// Direction-selection policy.
    pub mode: Mode,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        Self {
            dense_denominator: 20,
            mode: Mode::default(),
        }
    }
}

impl EdgeMapOptions {
    /// Options forcing push-based traversal.
    pub fn sparse() -> Self {
        Self {
            mode: Mode::Sparse,
            ..Self::default()
        }
    }

    /// Options forcing pull-based traversal.
    pub fn dense() -> Self {
        Self {
            mode: Mode::Dense,
            ..Self::default()
        }
    }

    /// Options using the fixed Ligra density heuristic.
    pub fn static_heuristic() -> Self {
        Self {
            mode: Mode::Static,
            ..Self::default()
        }
    }

    /// Options using the adaptive online cost model (the default).
    pub fn adaptive() -> Self {
        Self::default()
    }
}

/// Applies `update` over every edge leaving the frontier, returning the
/// subset of destinations for which `update` returned `true` (and for
/// which `cond` held before application).
///
/// * **Sparse (push)**: for each frontier vertex `u`, each out-edge
///   `(u, v, w)` with `cond(v)` gets `update(u, v, w)`. `update` must be
///   safe under concurrent invocation for the *same* `v` (use atomics or
///   CAS loops, as in Ligra).
/// * **Dense (pull)**: every vertex `v` with `cond(v)` scans its in-edges
///   and applies `update(u, v, w)` for in-neighbors `u` in the frontier.
///   Calls for a given `v` are sequential, so `update` needs no
///   synchronization on the destination.
///
/// The edge-computation counter (`edge_work`) is incremented once per
/// `update` invocation; the evaluation's Figure 6 / Table 7 read it.
pub fn edge_map<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    opts: EdgeMapOptions,
    edge_work: &parallel::WorkCounter,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    if frontier.is_empty() {
        return VertexSubset::empty(n);
    }
    // Unit counts for the cost models: what each traversal touches.
    // Forced modes skip the out-degree scan entirely.
    let units = |sparse_needed: bool| -> (u64, u64) {
        let sparse = if sparse_needed {
            (frontier.len() + frontier.out_degree_sum(g)) as u64
        } else {
            0
        };
        (sparse, (n + g.num_edges()) as u64)
    };
    let static_pick = |sparse_units: u64| {
        sparse_units > (g.num_edges() / opts.dense_denominator.max(1)) as u64
    };
    let mut adaptive_state: Option<(crate::adaptive::Decision, u64, u64)> = None;
    let use_dense = match opts.mode {
        Mode::Sparse => false,
        Mode::Dense => true,
        Mode::Static => {
            let (sparse_units, _) = units(true);
            static_pick(sparse_units)
        }
        Mode::Adaptive => {
            let (sparse_units, dense_units) = units(true);
            let decision = crate::adaptive::global().choose(
                sparse_units,
                dense_units,
                static_pick(sparse_units),
            );
            adaptive_state = Some((decision, sparse_units, dense_units));
            decision.dense
        }
    };
    // Clocks are read when a profiling hook is installed or the adaptive
    // controller needs an observation; forced/static modes without a
    // hook cost one load-and-branch per call.
    let hook = crate::profile::edge_map_hook();
    let timed = (hook.is_some() || adaptive_state.is_some())
        .then(|| (std::time::Instant::now(), edge_work.get()));
    let out = if use_dense {
        edge_map_dense(g, frontier, update, cond, edge_work)
    } else {
        edge_map_sparse(g, frontier, update, cond, edge_work)
    };
    if let Some((start, work_before)) = timed {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut probe = false;
        let mut mispredict = false;
        if let Some((decision, sparse_units, dense_units)) = adaptive_state {
            probe = decision.probe;
            mispredict =
                crate::adaptive::global().observe(decision, sparse_units, dense_units, nanos);
        }
        if let Some(hook) = hook {
            hook(crate::profile::EdgeMapSample {
                nanos,
                edges: edge_work.get().wrapping_sub(work_before),
                dense: use_dense,
                adaptive: adaptive_state.is_some(),
                probe,
                mispredict,
            });
        }
    }
    out
}

/// Edges per chunk floor for the edge-balanced sparse partition; below
/// this, splitting costs more (scheduling + partition_point) than the
/// work it distributes.
const MIN_CHUNK_EDGES: usize = 2048;

/// Work chunks per worker thread in the sparse path — enough slack for
/// the scheduler to even out chunks whose `update` costs differ.
const CHUNKS_PER_THREAD: usize = 8;

/// Vertices per chunk in the dense (pull) path. Work per vertex is the
/// in-degree scan, so vertex chunks this size keep per-chunk counter
/// publication negligible while bounding skew from hub vertices.
const DENSE_CHUNK_VERTICES: usize = 1024;

fn edge_map_sparse<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    edge_work: &parallel::WorkCounter,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    let next = AtomicBitSet::new(n);
    // Borrow the id list when the frontier is already sparse; only a
    // dense frontier pays for materialization (blocked parallel
    // conversion inside `to_ids`).
    let collected;
    let ids: &[VertexId] = match frontier.sparse_ids() {
        Some(ids) => ids,
        None => {
            collected = frontier.to_ids();
            &collected
        }
    };

    // Edge-balanced partition: offsets[i] is the global rank of the
    // first out-edge of ids[i]; the trailing sentinel becomes the total.
    // Chunks own equal *edge-count* ranges, so one hub vertex is split
    // across chunks instead of serializing a worker (power-law degree
    // skew is the sparse path's worst case).
    let mut offsets: Vec<usize> = parallel::par_map(0..ids.len(), |i| g.out_degree(ids[i]));
    offsets.push(0);
    let total_edges = parallel::par_exclusive_prefix_sum(&mut offsets);
    if total_edges == 0 {
        return VertexSubset::empty(n);
    }

    let target_chunks = parallel::default_threads() * CHUNKS_PER_THREAD;
    let chunk_edges = total_edges.div_ceil(target_chunks).max(MIN_CHUNK_EDGES);
    let chunks = total_edges.div_ceil(chunk_edges);
    let csr = g.csr();
    let work = parallel::StripedCounter::new();
    parallel::par_for(0..chunks, |c| {
        let lo = c * chunk_edges;
        let hi = (lo + chunk_edges).min(total_edges);
        // Last frontier position whose edge range starts at or before
        // `lo`; zero-degree vertices sharing that offset have empty
        // ranges and fall through the loop.
        let mut vi = offsets.partition_point(|&o| o <= lo) - 1;
        let mut local = 0u64;
        while vi < ids.len() && offsets[vi] < hi {
            let u = ids[vi];
            let targets = csr.neighbors(u);
            let weights = csr.weights(u);
            let base = offsets[vi];
            let estart = lo.saturating_sub(base);
            let eend = (hi - base).min(targets.len());
            for k in estart..eend {
                let v = targets[k];
                if cond(v) {
                    local += 1;
                    if update(u, v, weights[k]) {
                        next.set(v as usize);
                    }
                }
            }
            vi += 1;
        }
        work.add(c, local);
    });
    edge_work.add(work.sum());
    VertexSubset::from_bits(next).into_sparse()
}

fn edge_map_dense<U, C>(
    g: &GraphSnapshot,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    edge_work: &parallel::WorkCounter,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync + Send,
    C: Fn(VertexId) -> bool + Sync + Send,
{
    let n = g.num_vertices();
    // Borrows the membership bits when the frontier is already dense
    // (the common case in pull-mode loops) instead of cloning it.
    let in_frontier = frontier.to_dense_bits();
    let in_frontier = in_frontier.as_ref();
    let next = AtomicBitSet::new(n);
    let csc = g.csc();
    let work = parallel::StripedCounter::new();
    parallel::par_for_chunks(n, DENSE_CHUNK_VERTICES, |c, range| {
        let mut local = 0u64;
        for vi in range {
            let v = vi as VertexId;
            if !cond(v) {
                continue;
            }
            let sources = csc.neighbors(v);
            let weights = csc.weights(v);
            let mut activated = false;
            for (k, &u) in sources.iter().enumerate() {
                if in_frontier.get(u as usize) {
                    local += 1;
                    if update(u, v, weights[k]) {
                        activated = true;
                    }
                }
            }
            if activated {
                next.set(vi);
            }
        }
        work.add(c, local);
    });
    edge_work.add(work.sum());
    VertexSubset::from_bits(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::WorkCounter;
    use graphbolt_graph::GraphBuilder;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn chain(n: usize) -> GraphSnapshot {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b = b.add_edge(i as VertexId, i as VertexId + 1, 1.0);
        }
        b.build()
    }

    fn bfs_layers(g: &GraphSnapshot, opts: EdgeMapOptions) -> Vec<i32> {
        let n = g.num_vertices();
        let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        // ordering: single-threaded init before the first edge_map.
        level[0].store(0, Ordering::Relaxed);
        let mut frontier = VertexSubset::from_ids(n, vec![0]);
        let work = WorkCounter::new();
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = edge_map(
                g,
                &frontier,
                |_u, v, _w| {
                    // ordering: the CAS decides a single winner per
                    // vertex; the written level is read only after
                    // edge_map joins, so Relaxed suffices on both
                    // success and failure.
                    level[v as usize]
                        .compare_exchange(u32::MAX, d, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                },
                // ordering: u32::MAX check tolerates stale reads — a
                // lost race is re-decided by the CAS above.
                |v| level[v as usize].load(Ordering::Relaxed) == u32::MAX,
                opts,
                &work,
            );
        }
        level
            .iter()
            .map(|l| {
                // ordering: read after the BFS loop; every edge_map
                // joined its workers.
                let v = l.load(Ordering::Relaxed);
                if v == u32::MAX {
                    -1
                } else {
                    v as i32
                }
            })
            .collect()
    }

    #[test]
    fn sparse_and_dense_bfs_agree() {
        let g = chain(50);
        let sparse = bfs_layers(&g, EdgeMapOptions::sparse());
        let dense = bfs_layers(&g, EdgeMapOptions::dense());
        assert_eq!(sparse, dense);
        assert_eq!(sparse[49], 49);
    }

    #[test]
    fn edge_work_counts_update_calls() {
        let g = chain(10);
        let work = WorkCounter::new();
        let frontier = VertexSubset::full(10);
        edge_map(
            &g,
            &frontier,
            |_u, _v, _w| false,
            |_| true,
            EdgeMapOptions::dense(),
            &work,
        );
        assert_eq!(work.get(), 9);
    }

    #[test]
    fn cond_filters_destinations() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .build();
        let work = WorkCounter::new();
        let frontier = VertexSubset::from_ids(3, vec![0]);
        let next = edge_map(
            &g,
            &frontier,
            |_u, _v, _w| true,
            |v| v != 1,
            EdgeMapOptions::sparse(),
            &work,
        );
        assert_eq!(next.to_ids(), vec![2]);
        assert_eq!(work.get(), 1);
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let g = chain(5);
        let work = WorkCounter::new();
        let next = edge_map(
            &g,
            &VertexSubset::empty(5),
            |_u, _v, _w| true,
            |_| true,
            EdgeMapOptions::default(),
            &work,
        );
        assert!(next.is_empty());
        assert_eq!(work.get(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        /// Push and pull traversal of the same frontier activate exactly
        /// the same destination set on arbitrary graphs — the direction
        /// optimization must be purely a performance choice.
        #[test]
        fn push_and_pull_activate_identical_sets(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3..30usize);
            let mut b = graphbolt_graph::GraphBuilder::new(n);
            for _ in 0..n * 2 {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, 1.0);
                }
            }
            let g = b.build();
            let members: Vec<VertexId> = (0..n as VertexId)
                .filter(|_| rng.gen_bool(0.4))
                .collect();
            let frontier = VertexSubset::from_ids(n, members);
            let blocked: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();

            let run = |opts: EdgeMapOptions| -> (Vec<VertexId>, u64) {
                let work = WorkCounter::new();
                let next = edge_map(
                    &g,
                    &frontier,
                    |_u, _v, _w| true,
                    |v| !blocked[v as usize],
                    opts,
                    &work,
                )
                .to_ids();
                (next, work.get())
            };
            let (pushed, push_work) = run(EdgeMapOptions::sparse());
            let (pulled, pull_work) = run(EdgeMapOptions::dense());
            let (static_pick, static_work) = run(EdgeMapOptions::static_heuristic());
            let (adaptive, adaptive_work) = run(EdgeMapOptions::adaptive());
            proptest::prop_assert_eq!(&pushed, &pulled);
            proptest::prop_assert_eq!(&pushed, &static_pick);
            // Adaptive mode shares the process-global controller with
            // every other test in the binary, so whichever direction it
            // lands on must still be a pure performance choice.
            proptest::prop_assert_eq!(&pushed, &adaptive);
            // All modes visit the same live edge set, so the work
            // counters must agree exactly.
            proptest::prop_assert_eq!(push_work, pull_work);
            proptest::prop_assert_eq!(push_work, static_work);
            proptest::prop_assert_eq!(push_work, adaptive_work);
            // Dense→sparse→dense round-trip preserves membership.
            let round_trip = frontier
                .clone()
                .into_dense()
                .into_sparse()
                .to_ids();
            proptest::prop_assert_eq!(round_trip, frontier.to_ids());
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        /// The blocked parallel dense→sparse conversion (popcount +
        /// prefix sum + scatter) must produce exactly the sequential
        /// ascending id walk, including at block boundaries. Sizes here
        /// exceed the parallel-path threshold.
        #[test]
        fn parallel_dense_to_sparse_round_trip_matches_sequential(seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(40_000..90_000usize);
            let density = rng.gen_range(0.001..0.3f64);
            let bits = AtomicBitSet::new(n);
            let mut expected = Vec::new();
            for i in 0..n {
                if rng.gen_bool(density) {
                    bits.set(i);
                    expected.push(i as VertexId);
                }
            }
            let sequential: Vec<VertexId> =
                bits.iter().map(|i| i as VertexId).collect();
            proptest::prop_assert_eq!(&sequential, &expected);
            let sparse = VertexSubset::from_bits(bits).into_sparse();
            proptest::prop_assert_eq!(sparse.to_ids(), expected);
        }
    }

    /// A hub whose out-degree spans several edge-balanced chunks must be
    /// split across workers without dropping, duplicating, or
    /// double-counting edges (offsets with zero-degree duplicates
    /// included).
    #[test]
    fn edge_balanced_sparse_splits_hub_correctly() {
        let hub_deg = 9000u32;
        let n = hub_deg as usize + 1;
        let mut b = GraphBuilder::new(n);
        for v in 1..=hub_deg {
            b = b.add_edge(0, v, 1.0);
        }
        b = b.add_edge(100, 50, 1.0).add_edge(200, 60, 1.0);
        let g = b.build();
        // 300 has no out-edges: its offset duplicates its successor's.
        let frontier = VertexSubset::from_ids(n, vec![0, 100, 200, 300]);
        let run = |opts: EdgeMapOptions| -> (Vec<VertexId>, u64) {
            let work = WorkCounter::new();
            let next = edge_map(&g, &frontier, |_u, _v, _w| true, |_| true, opts, &work);
            (next.to_ids(), work.get())
        };
        let (pushed, push_work) = run(EdgeMapOptions::sparse());
        let (pulled, pull_work) = run(EdgeMapOptions::dense());
        assert_eq!(pushed, pulled);
        assert_eq!(pushed, (1..=hub_deg).collect::<Vec<_>>());
        assert_eq!(push_work, u64::from(hub_deg) + 2);
        assert_eq!(pull_work, push_work);
    }

    #[test]
    fn auto_mode_picks_dense_for_large_frontier() {
        // A full frontier on a dense-ish graph must still produce the same
        // activation set as forced modes.
        let mut b = GraphBuilder::new(20);
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j {
                    b = b.add_edge(i, j, 1.0);
                }
            }
        }
        let g = b.build();
        let work = WorkCounter::new();
        let frontier = VertexSubset::full(20);
        let next = edge_map(
            &g,
            &frontier,
            |_u, _v, _w| true,
            |_| true,
            EdgeMapOptions::default(),
            &work,
        );
        assert_eq!(next.len(), 20);
    }
}
