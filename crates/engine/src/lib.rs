//! Ligra-style BSP execution substrate.
//!
//! GraphBolt is built over Ligra's processing architecture (§4 of the
//! paper): computation is expressed as `edge_map` / `vertex_map` over
//! frontiers ([`VertexSubset`]), with automatic *direction optimization* —
//! sparse frontiers push along out-edges, dense frontiers pull along
//! in-edges — which is what lets the same algorithm run efficiently both
//! on full graphs (initial execution) and on the tiny frontiers produced
//! by incremental refinement.
//!
//! This crate is deliberately independent of the GraphBolt dependency
//! machinery: it is a complete, reusable synchronous graph-processing
//! layer (the "Ligra baseline" of the evaluation is expressed directly on
//! it).

pub mod adaptive;
pub mod bitset;
pub mod edge_map;
pub mod parallel;
pub mod profile;
pub mod subset;
pub mod vertex_map;

pub use bitset::AtomicBitSet;
pub use edge_map::{edge_map, EdgeMapOptions, Mode};
pub use subset::VertexSubset;
pub use vertex_map::{vertex_filter, vertex_map};
