//! Online cost models for adaptive direction optimization.
//!
//! [`AdaptiveController`] replaces the fixed Ligra density threshold
//! with measured per-path throughput. Every timed `edge_map` invocation
//! feeds an EWMA estimate of nanoseconds-per-work-unit for the path it
//! ran — sparse units are `|F| + outdeg(F)` (the work the push traversal
//! actually touches), dense units are `|V| + |E|` (the pull traversal
//! scans every vertex's in-list regardless of frontier size) — and each
//! subsequent invocation picks the path with the lower predicted cost
//! `units × ns_per_unit`.
//!
//! Two policies keep the estimates honest:
//!
//! * **Cold start**: with no measurements the controller defers to the
//!   static heuristic; with one path measured it probes the other, so
//!   both estimates exist after two invocations.
//! * **Time-budgeted probes**: once the winner has accumulated
//!   [`PROBE_SPEND_RATIO`] times the loser's *predicted* cost in
//!   observed wall-clock time, the loser is re-run once. Budgeting by
//!   spent time rather than call count bounds probe overhead to roughly
//!   `1 / PROBE_SPEND_RATIO` of total traversal time — a fixed
//!   every-N-calls probe would make tiny-frontier workloads arbitrarily
//!   slower (one dense probe can cost 100× a small sparse call).
//!
//! Estimate cells live in [`parallel::WorkCounter`]s holding `f64` bit
//! patterns, the workspace's sanctioned shared-counter primitive. The
//! read-modify-write in [`AdaptiveController::observe`] is not atomic:
//! concurrent observers race and the last writer wins, which is benign —
//! the cell is a smoothed estimate of a stationary quantity, and every
//! subsequent observation re-converges it.

use std::sync::OnceLock;

use crate::parallel::WorkCounter;

/// EWMA smoothing factor for routine (winner-path) observations.
const EWMA_ALPHA: f64 = 0.25;

/// Heavier smoothing factor for probe observations: probes are rare, so
/// each one carries fresher information than a routine sample and should
/// move the stale loser estimate faster.
const PROBE_ALPHA: f64 = 0.5;

/// The predicted loser is re-measured once the winner has spent this
/// multiple of the loser's predicted cost; probe overhead is therefore
/// bounded near `1 / PROBE_SPEND_RATIO` of traversal time.
const PROBE_SPEND_RATIO: f64 = 32.0;

/// One estimate cell: a `f64` nanoseconds-per-unit value stored as bits
/// in a [`WorkCounter`]. Zero bits (`0.0`) is the "unmeasured" sentinel;
/// observed costs are clamped strictly positive.
#[derive(Debug, Default)]
struct CostCell(WorkCounter);

impl CostCell {
    fn get(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.get());
        (v > 0.0).then_some(v)
    }

    fn set(&self, value: f64) {
        self.0.set(value.to_bits());
    }

    /// Blends `sample` into the estimate with weight `alpha`, seeding on
    /// the first observation. Racy read-modify-write by design (see the
    /// module docs); the cell converges under any interleaving.
    fn blend(&self, sample: f64, alpha: f64) {
        let next = match self.get() {
            Some(prev) => prev + alpha * (sample - prev),
            None => sample,
        };
        self.set(next.max(f64::MIN_POSITIVE));
    }
}

/// The outcome of one [`AdaptiveController::choose`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Run the dense (pull) traversal.
    pub dense: bool,
    /// This invocation is a probe: the predicted loser (or an unmeasured
    /// path) is being run to refresh its estimate.
    pub probe: bool,
}

/// Monotonic counters describing a controller's decision history; the
/// bench harness records deltas of these per BENCH row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerSnapshot {
    /// Invocations routed to the sparse (push) path.
    pub sparse_picks: u64,
    /// Invocations routed to the dense (pull) path.
    pub dense_picks: u64,
    /// Invocations that were probes of a stale or unmeasured path.
    pub probes: u64,
    /// Non-probe invocations whose chosen path the post-observation
    /// model says was the slower one.
    pub mispredicts: u64,
    /// Current sparse estimate (ns per unit), if measured.
    pub sparse_ns_per_unit: Option<f64>,
    /// Current dense estimate (ns per unit), if measured.
    pub dense_ns_per_unit: Option<f64>,
}

/// Adaptive sparse/dense path selector; see the module docs.
#[derive(Debug, Default)]
pub struct AdaptiveController {
    sparse_cost: CostCell,
    dense_cost: CostCell,
    /// Observed nanoseconds accumulated since the sparse path was last
    /// measured (drives the staleness probe of a losing sparse path).
    spent_since_sparse: WorkCounter,
    /// Same, for the dense path.
    spent_since_dense: WorkCounter,
    sparse_picks: WorkCounter,
    dense_picks: WorkCounter,
    probes: WorkCounter,
    mispredicts: WorkCounter,
}

impl AdaptiveController {
    /// A fresh controller with no measurements.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted winner for the given unit counts: `Some(true)` when the
    /// dense path is cheaper, `None` until both paths are measured.
    pub fn predict(&self, sparse_units: u64, dense_units: u64) -> Option<bool> {
        let s = self.sparse_cost.get()?;
        let d = self.dense_cost.get()?;
        Some(d * dense_units as f64 <= s * sparse_units as f64)
    }

    /// Picks a traversal direction for one invocation. `static_dense` is
    /// the fixed-heuristic choice, used only before any measurement
    /// exists. Decision and probe counters are bumped here.
    pub fn choose(&self, sparse_units: u64, dense_units: u64, static_dense: bool) -> Decision {
        let s = self.sparse_cost.get();
        let d = self.dense_cost.get();
        let decision = match (s, d) {
            // Nothing measured yet: trust the static heuristic; the
            // observation that follows seeds that path's estimate.
            (None, None) => Decision {
                dense: static_dense,
                probe: false,
            },
            // One path measured: probe the other so both estimates
            // exist before any cost comparison happens.
            (Some(_), None) => Decision {
                dense: true,
                probe: true,
            },
            (None, Some(_)) => Decision {
                dense: false,
                probe: true,
            },
            (Some(s), Some(d)) => {
                let sparse_pred = s * sparse_units as f64;
                let dense_pred = d * dense_units as f64;
                let dense_wins = dense_pred <= sparse_pred;
                let (loser_pred, loser_spend) = if dense_wins {
                    (sparse_pred, &self.spent_since_sparse)
                } else {
                    (dense_pred, &self.spent_since_dense)
                };
                if loser_spend.get() as f64 >= loser_pred * PROBE_SPEND_RATIO {
                    Decision {
                        dense: !dense_wins,
                        probe: true,
                    }
                } else {
                    Decision {
                        dense: dense_wins,
                        probe: false,
                    }
                }
            }
        };
        if decision.dense {
            self.dense_picks.add(1);
        } else {
            self.sparse_picks.add(1);
        }
        if decision.probe {
            self.probes.add(1);
        }
        decision
    }

    /// Feeds one measured invocation back into the model. Returns true
    /// when this was a routine (non-probe) pick that the freshly updated
    /// model now scores as the slower path — a mispredict.
    pub fn observe(
        &self,
        decision: Decision,
        sparse_units: u64,
        dense_units: u64,
        nanos: u64,
    ) -> bool {
        let nanos = nanos.max(1);
        let alpha = if decision.probe { PROBE_ALPHA } else { EWMA_ALPHA };
        let (cell, units, spent_self, spent_other) = if decision.dense {
            (
                &self.dense_cost,
                dense_units,
                &self.spent_since_dense,
                &self.spent_since_sparse,
            )
        } else {
            (
                &self.sparse_cost,
                sparse_units,
                &self.spent_since_sparse,
                &self.spent_since_dense,
            )
        };
        cell.blend(nanos as f64 / units.max(1) as f64, alpha);
        spent_self.set(0);
        spent_other.add(nanos);
        let mispredicted = !decision.probe
            && self
                .predict(sparse_units, dense_units)
                .is_some_and(|dense_wins| dense_wins != decision.dense);
        if mispredicted {
            self.mispredicts.add(1);
        }
        mispredicted
    }

    /// Current decision counters and estimates.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            sparse_picks: self.sparse_picks.get(),
            dense_picks: self.dense_picks.get(),
            probes: self.probes.get(),
            mispredicts: self.mispredicts.get(),
            sparse_ns_per_unit: self.sparse_cost.get(),
            dense_ns_per_unit: self.dense_cost.get(),
        }
    }
}

static GLOBAL: OnceLock<AdaptiveController> = OnceLock::new();

/// The process-global controller used by `edge_map` in adaptive mode.
/// One controller per process matches the hook architecture in
/// `profile.rs` and lets long-lived services amortize the cold start.
pub fn global() -> &'static AdaptiveController {
    GLOBAL.get_or_init(AdaptiveController::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `rounds` choose/observe cycles against synthetic per-unit
    /// costs, returning the decisions taken.
    fn drive(
        ctl: &AdaptiveController,
        rounds: usize,
        sparse_units: u64,
        dense_units: u64,
        sparse_ns_per_unit: f64,
        dense_ns_per_unit: f64,
    ) -> Vec<Decision> {
        (0..rounds)
            .map(|_| {
                let d = ctl.choose(sparse_units, dense_units, false);
                let nanos = if d.dense {
                    dense_ns_per_unit * dense_units as f64
                } else {
                    sparse_ns_per_unit * sparse_units as f64
                };
                ctl.observe(d, sparse_units, dense_units, nanos as u64);
                d
            })
            .collect()
    }

    #[test]
    fn cold_start_defers_to_static_heuristic() {
        let ctl = AdaptiveController::new();
        assert_eq!(
            ctl.choose(10, 100, true),
            Decision {
                dense: true,
                probe: false
            }
        );
        let ctl = AdaptiveController::new();
        assert_eq!(
            ctl.choose(10, 100, false),
            Decision {
                dense: false,
                probe: false
            }
        );
    }

    #[test]
    fn second_call_probes_the_unmeasured_path() {
        let ctl = AdaptiveController::new();
        let first = ctl.choose(10, 100, false);
        ctl.observe(first, 10, 100, 1_000);
        let second = ctl.choose(10, 100, false);
        assert!(second.probe);
        assert_ne!(second.dense, first.dense);
    }

    #[test]
    fn picks_predicted_cheaper_path_once_both_measured() {
        let ctl = AdaptiveController::new();
        // Seed: sparse at 10 ns/unit, dense at 2 ns/unit.
        ctl.observe(
            Decision {
                dense: false,
                probe: false,
            },
            100,
            1_000,
            1_000,
        );
        ctl.observe(
            Decision {
                dense: true,
                probe: true,
            },
            100,
            1_000,
            2_000,
        );
        // 100 sparse units × 10 = 1000 vs 1000 dense units × 2 = 2000.
        assert!(!ctl.choose(100, 1_000, true).dense);
        // 10 sparse units × 10 = 100 vs 10 dense units × 2 = 20.
        assert!(ctl.choose(10, 10, false).dense);
    }

    #[test]
    fn probe_overhead_is_bounded() {
        let ctl = AdaptiveController::new();
        // Dense is 100× more expensive; the controller should settle on
        // sparse and only occasionally probe dense.
        let decisions = drive(&ctl, 2_000, 1_000, 1_000, 1.0, 100.0);
        let dense_runs = decisions.iter().filter(|d| d.dense).count();
        // Spend-budgeted probing: one dense probe (cost 100k ns) per
        // ~32×100k ns of sparse time (3200 sparse calls). Over 2000
        // rounds that allows the cold-start run plus at most a couple of
        // probes.
        assert!(dense_runs <= 4, "too many dense runs: {dense_runs}");
        let snap = ctl.snapshot();
        assert!(snap.sparse_picks > 1_900);
    }

    #[test]
    fn mispredicts_are_counted() {
        let ctl = AdaptiveController::new();
        // Both measured, dense wildly cheaper per unit — but feed a
        // routine sparse observation so slow it flips the model.
        ctl.observe(
            Decision {
                dense: false,
                probe: false,
            },
            100,
            100,
            100,
        );
        ctl.observe(
            Decision {
                dense: true,
                probe: true,
            },
            100,
            100,
            100,
        );
        // Sparse now measures 10_000× slower than its estimate: the
        // updated model says dense was the right call.
        let flipped = ctl.observe(
            Decision {
                dense: false,
                probe: false,
            },
            100,
            100,
            1_000_000,
        );
        assert!(flipped);
        assert_eq!(ctl.snapshot().mispredicts, 1);
    }

    #[test]
    fn snapshot_reports_estimates() {
        let ctl = AdaptiveController::new();
        assert_eq!(ctl.snapshot().sparse_ns_per_unit, None);
        ctl.observe(
            Decision {
                dense: false,
                probe: false,
            },
            100,
            100,
            1_000,
        );
        let snap = ctl.snapshot();
        assert_eq!(snap.sparse_ns_per_unit, Some(10.0));
        assert_eq!(snap.dense_ns_per_unit, None);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// Under a stationary workload the controller converges to the
        /// genuinely cheaper path: after a settling period every routine
        /// (non-probe) decision picks the true cost argmin.
        #[test]
        fn converges_to_better_path_when_stationary(
            sparse_ns in 1.0f64..50.0,
            ratio in 2.0f64..50.0,
            dense_cheaper in proptest::bool::ANY,
            sparse_units in 100u64..100_000,
            dense_units in 100u64..100_000,
        ) {
            let (s, d) = if dense_cheaper {
                // Make dense's *total* cost cheaper by the ratio.
                let d = sparse_ns * sparse_units as f64
                    / (ratio * dense_units as f64);
                (sparse_ns, d)
            } else {
                let d = sparse_ns * sparse_units as f64 * ratio
                    / dense_units as f64;
                (sparse_ns, d)
            };
            let ctl = AdaptiveController::new();
            let decisions = drive(&ctl, 300, sparse_units, dense_units, s, d);
            for dec in &decisions[50..] {
                if !dec.probe {
                    proptest::prop_assert_eq!(dec.dense, dense_cheaper);
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// After a workload shift that makes the other path cheaper, the
        /// probe policy re-measures the stale loser and the controller
        /// flips within a bounded number of rounds.
        #[test]
        fn recovers_after_workload_shift(
            sparse_ns in 1.0f64..20.0,
            units in 1_000u64..50_000,
        ) {
            let ctl = AdaptiveController::new();
            // Phase 1: sparse 4× cheaper (same unit counts on both
            // sides keeps the arithmetic transparent).
            let decisions = drive(&ctl, 200, units, units, sparse_ns, sparse_ns * 4.0);
            for dec in &decisions[50..] {
                if !dec.probe {
                    proptest::prop_assert!(!dec.dense);
                }
            }
            // Phase 2: costs swap — dense becomes 4× cheaper. Only a
            // probe can rediscover dense, since routine picks keep
            // running (and re-measuring) sparse.
            let decisions = drive(&ctl, 4_000, units, units, sparse_ns * 4.0, sparse_ns);
            let flip = decisions.iter().position(|d| d.dense && !d.probe);
            proptest::prop_assert!(
                flip.is_some(),
                "controller never flipped to dense after the shift"
            );
            // And it stays flipped: the tail is all dense.
            for dec in &decisions[decisions.len() - 50..] {
                if !dec.probe {
                    proptest::prop_assert!(dec.dense);
                }
            }
        }
    }
}
