//! Parallel `vertex_map` and `vertex_filter`.

use graphbolt_graph::VertexId;

use crate::bitset::AtomicBitSet;
use crate::parallel;
use crate::subset::VertexSubset;

/// Applies `f` to every member of `subset` in parallel.
///
/// Sparse subsets lend their id list directly; dense subsets iterate
/// their words in parallel chunks — neither path collects ids per call.
pub fn vertex_map<F>(subset: &VertexSubset, f: F)
where
    F: Fn(VertexId) + Sync + Send,
{
    match subset.sparse_ids() {
        Some(ids) => parallel::par_for(0..ids.len(), |i| f(ids[i])),
        None => {
            let bits = subset.dense_bits().expect("subset is sparse or dense");
            parallel::par_for(0..bits.num_words(), |wi| {
                let mut word = bits.word(wi);
                while word != 0 {
                    f((wi * 64 + word.trailing_zeros() as usize) as VertexId);
                    word &= word - 1;
                }
            });
        }
    }
}

/// Applies `f` to every member of `subset` in parallel, returning the
/// members for which `f` returned `true` (Ligra's `vertexFilter` /
/// the paper's `vertexMap` that yields `V_updated`, Algorithm 2 line 59).
pub fn vertex_filter<F>(subset: &VertexSubset, f: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync + Send,
{
    let n = subset.universe();
    let keep = AtomicBitSet::new(n);
    vertex_map(subset, |v| {
        if f(v) {
            keep.set(v as usize);
        }
    });
    VertexSubset::from_bits(keep).into_sparse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn vertex_map_visits_all_members() {
        let s = VertexSubset::from_ids(100, (0..50).collect());
        let hits = AtomicUsize::new(0);
        vertex_map(&s, |_| {
            // ordering: test counter; vertex_map joins its workers
            // before returning, which synchronizes the read below.
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // ordering: read after join.
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn vertex_filter_keeps_matching() {
        let s = VertexSubset::from_ids(100, (0..100).collect());
        let kept = vertex_filter(&s, |v| v % 7 == 0);
        assert_eq!(
            kept.to_ids(),
            vec![0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84, 91, 98]
        );
    }

    #[test]
    fn vertex_map_visits_dense_subset_without_collecting() {
        let s = VertexSubset::from_ids(300, (0..300).filter(|v| v % 3 == 0).collect())
            .into_dense();
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        vertex_map(&s, |v| {
            // ordering: test counters; vertex_map's join synchronizes
            // the reads below.
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(v as usize, Ordering::Relaxed);
        });
        // ordering: reads after join.
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (0..300usize).filter(|v| v % 3 == 0).sum::<usize>()
        );
    }

    #[test]
    fn vertex_filter_on_empty_is_empty() {
        let s = VertexSubset::empty(10);
        assert!(vertex_filter(&s, |_| true).is_empty());
    }
}
