//! Parallel `vertex_map` and `vertex_filter`.

use graphbolt_graph::VertexId;

use crate::bitset::AtomicBitSet;
use crate::parallel;
use crate::subset::VertexSubset;

/// Applies `f` to every member of `subset` in parallel.
pub fn vertex_map<F>(subset: &VertexSubset, f: F)
where
    F: Fn(VertexId) + Sync + Send,
{
    let ids: Vec<VertexId> = subset.iter().collect();
    parallel::par_for(0..ids.len(), |i| f(ids[i]));
}

/// Applies `f` to every member of `subset` in parallel, returning the
/// members for which `f` returned `true` (Ligra's `vertexFilter` /
/// the paper's `vertexMap` that yields `V_updated`, Algorithm 2 line 59).
pub fn vertex_filter<F>(subset: &VertexSubset, f: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync + Send,
{
    let n = subset.universe();
    let ids: Vec<VertexId> = subset.iter().collect();
    let keep = AtomicBitSet::new(n);
    parallel::par_for(0..ids.len(), |i| {
        if f(ids[i]) {
            keep.set(ids[i] as usize);
        }
    });
    VertexSubset::from_bits(keep).into_sparse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn vertex_map_visits_all_members() {
        let s = VertexSubset::from_ids(100, (0..50).collect());
        let hits = AtomicUsize::new(0);
        vertex_map(&s, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn vertex_filter_keeps_matching() {
        let s = VertexSubset::from_ids(100, (0..100).collect());
        let kept = vertex_filter(&s, |v| v % 7 == 0);
        assert_eq!(
            kept.to_ids(),
            vec![0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84, 91, 98]
        );
    }

    #[test]
    fn vertex_filter_on_empty_is_empty() {
        let s = VertexSubset::empty(10);
        assert!(vertex_filter(&s, |_| true).is_empty());
    }
}
