//! Vertex subsets (frontiers) with sparse/dense dual representation.

use graphbolt_graph::{GraphSnapshot, VertexId};

use crate::bitset::AtomicBitSet;
use crate::parallel;

/// Member count below which representation conversions stay sequential
/// (parallel fan-out costs more than it saves on tiny frontiers).
const PAR_CONVERT_THRESHOLD: usize = 4096;

/// A subset of vertices — the frontier flowing between BSP iterations.
///
/// Mirrors Ligra's `vertexSubset`: a subset is physically either **sparse**
/// (a vector of ids) or **dense** (a bit per vertex); [`edge_map`](crate::edge_map()) converts between the two based on frontier size to
/// pick push or pull traversal.
#[derive(Debug, Clone)]
pub enum VertexSubset {
    /// Explicit id list (not necessarily sorted, no duplicates).
    Sparse { n: usize, ids: Vec<VertexId> },
    /// Bit per vertex.
    Dense { bits: AtomicBitSet },
}

impl VertexSubset {
    /// Creates an empty sparse subset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self::Sparse { n, ids: Vec::new() }
    }

    /// Creates the full subset over `n` vertices.
    pub fn full(n: usize) -> Self {
        let bits = AtomicBitSet::new(n);
        for i in 0..n {
            bits.set(i);
        }
        Self::Dense { bits }
    }

    /// Creates a sparse subset from an id list. Duplicates are removed.
    pub fn from_ids(n: usize, mut ids: Vec<VertexId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        Self::Sparse { n, ids }
    }

    /// Creates a dense subset from a bit set.
    pub fn from_bits(bits: AtomicBitSet) -> Self {
        Self::Dense { bits }
    }

    /// Creates a subset containing vertices for which `f` returns true.
    pub fn from_fn(n: usize, f: impl Fn(VertexId) -> bool) -> Self {
        let bits = AtomicBitSet::new(n);
        for v in 0..n {
            if f(v as VertexId) {
                bits.set(v);
            }
        }
        Self::Dense { bits }
    }

    /// Number of vertices in the underlying graph.
    pub fn universe(&self) -> usize {
        match self {
            Self::Sparse { n, .. } => *n,
            Self::Dense { bits } => bits.capacity(),
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            Self::Sparse { ids, .. } => ids.len(),
            Self::Dense { bits } => bits.count(),
        }
    }

    /// Returns `true` if the subset has no members.
    pub fn is_empty(&self) -> bool {
        match self {
            Self::Sparse { ids, .. } => ids.is_empty(),
            Self::Dense { bits } => bits.count() == 0,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            Self::Sparse { ids, .. } => ids.binary_search(&v).is_ok() || ids.contains(&v),
            Self::Dense { bits } => bits.get(v as usize),
        }
    }

    /// Iterates member ids (ascending for dense; insertion order for
    /// sparse).
    pub fn iter(&self) -> Box<dyn Iterator<Item = VertexId> + '_> {
        match self {
            Self::Sparse { ids, .. } => Box::new(ids.iter().copied()),
            Self::Dense { bits } => Box::new(bits.iter().map(|i| i as VertexId)),
        }
    }

    /// Borrows the id list when the subset is already sparse, letting
    /// hot paths (sparse `edge_map`, `vertex_map`) skip re-collecting
    /// ids on every call.
    #[inline]
    pub fn sparse_ids(&self) -> Option<&[VertexId]> {
        match self {
            Self::Sparse { ids, .. } => Some(ids),
            Self::Dense { .. } => None,
        }
    }

    /// Borrows the bit set when the subset is already dense.
    #[inline]
    pub fn dense_bits(&self) -> Option<&AtomicBitSet> {
        match self {
            Self::Dense { bits } => Some(bits),
            Self::Sparse { .. } => None,
        }
    }

    /// Materializes the membership bit set without consuming the subset:
    /// borrowed when already dense, built (in parallel for large
    /// frontiers) when sparse.
    pub fn to_dense_bits(&self) -> std::borrow::Cow<'_, AtomicBitSet> {
        match self {
            Self::Dense { bits } => std::borrow::Cow::Borrowed(bits),
            Self::Sparse { n, ids } => {
                let bits = AtomicBitSet::new(*n);
                if ids.len() >= PAR_CONVERT_THRESHOLD {
                    parallel::par_for(0..ids.len(), |i| {
                        bits.set(ids[i] as usize);
                    });
                } else {
                    for &v in ids {
                        bits.set(v as usize);
                    }
                }
                std::borrow::Cow::Owned(bits)
            }
        }
    }

    /// Collects member ids into a sorted vector.
    pub fn to_ids(&self) -> Vec<VertexId> {
        match self {
            // `AtomicBitSet::to_vec` is already ascending (and parallel
            // for large sets) — no extra sort needed.
            Self::Dense { bits } => bits.to_vec().into_iter().map(|i| i as VertexId).collect(),
            Self::Sparse { ids, .. } => {
                let mut ids = ids.clone();
                ids.sort_unstable();
                ids
            }
        }
    }

    /// Converts to the dense representation (no-op if already dense).
    pub fn into_dense(self) -> Self {
        match self {
            Self::Dense { .. } => self,
            Self::Sparse { n, ids } => {
                let bits = AtomicBitSet::new(n);
                if ids.len() >= PAR_CONVERT_THRESHOLD {
                    parallel::par_for(0..ids.len(), |i| {
                        bits.set(ids[i] as usize);
                    });
                } else {
                    for v in ids {
                        bits.set(v as usize);
                    }
                }
                Self::Dense { bits }
            }
        }
    }

    /// Converts to the sparse representation (no-op if already sparse).
    /// Large dense subsets convert via the blocked parallel
    /// popcount/prefix-sum/scatter in [`AtomicBitSet::to_vec`]; the
    /// resulting id list is ascending either way.
    pub fn into_sparse(self) -> Self {
        match self {
            Self::Sparse { .. } => self,
            Self::Dense { bits } => {
                let n = bits.capacity();
                let ids = bits.to_vec().into_iter().map(|i| i as VertexId).collect();
                Self::Sparse { n, ids }
            }
        }
    }

    /// Union with another subset over the same universe.
    pub fn union(&self, other: &VertexSubset) -> VertexSubset {
        assert_eq!(self.universe(), other.universe());
        let bits = AtomicBitSet::new(self.universe());
        for v in self.iter() {
            bits.set(v as usize);
        }
        for v in other.iter() {
            bits.set(v as usize);
        }
        Self::Dense { bits }
    }

    /// Sum of out-degrees of member vertices — Ligra's density heuristic
    /// input (`|F| + outdeg(F)` vs `|E| / 20`). Parallel for large
    /// frontiers (word-blocked for dense, id-blocked for sparse).
    pub fn out_degree_sum(&self, g: &GraphSnapshot) -> usize {
        match self {
            Self::Sparse { ids, .. } => {
                if ids.len() >= PAR_CONVERT_THRESHOLD {
                    parallel::par_sum(0..ids.len(), |i| g.out_degree(ids[i]))
                } else {
                    ids.iter().map(|&v| g.out_degree(v)).sum()
                }
            }
            Self::Dense { bits } => {
                if bits.capacity() >= PAR_CONVERT_THRESHOLD {
                    parallel::par_sum(0..bits.num_words(), |wi| {
                        let mut bits_word = bits.word(wi);
                        let mut sum = 0usize;
                        while bits_word != 0 {
                            let v = wi * 64 + bits_word.trailing_zeros() as usize;
                            sum += g.out_degree(v as VertexId);
                            bits_word &= bits_word - 1;
                        }
                        sum
                    })
                } else {
                    self.iter().map(|v| g.out_degree(v)).sum()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::GraphBuilder;

    #[test]
    fn from_ids_dedups() {
        let s = VertexSubset::from_ids(10, vec![3, 1, 3, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(1) && s.contains(3) && s.contains(7));
        assert!(!s.contains(0));
    }

    #[test]
    fn full_contains_everything() {
        let s = VertexSubset::full(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(99));
    }

    #[test]
    fn dense_sparse_round_trip() {
        let s = VertexSubset::from_ids(64, vec![0, 5, 63]);
        let d = s.clone().into_dense();
        let back = d.into_sparse();
        assert_eq!(back.to_ids(), vec![0, 5, 63]);
    }

    #[test]
    fn union_merges() {
        let a = VertexSubset::from_ids(10, vec![1, 2]);
        let b = VertexSubset::from_ids(10, vec![2, 3]);
        assert_eq!(a.union(&b).to_ids(), vec![1, 2, 3]);
    }

    #[test]
    fn out_degree_sum_counts_frontier_edges() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let s = VertexSubset::from_ids(3, vec![0, 1]);
        assert_eq!(s.out_degree_sum(&g), 3);
    }

    #[test]
    fn from_fn_selects_matching() {
        let s = VertexSubset::from_fn(10, |v| v % 3 == 0);
        assert_eq!(s.to_ids(), vec![0, 3, 6, 9]);
    }
}
