//! KickStarter-style streaming engine for monotonic path algorithms.
//!
//! Reimplementation of the comparison system of §5.4(B): *KickStarter:
//! Fast and Accurate Computations on Streaming Graphs via Trimmed
//! Approximations* (Vora, Gupta, Xu — ASPLOS'17). KickStarter targets
//! *monotonic, path-based* algorithms (SSSP, BFS, WCC): it tracks a
//! single light-weight dependence per vertex — the in-edge that
//! determined its value, forming a dependence tree — instead of
//! GraphBolt's per-iteration aggregation histories. On edge deletion it
//! *trims* the subtree of values that transitively depended on the
//! deleted edge to safe approximations and re-propagates monotonically;
//! on edge addition it simply relaxes forward.
//!
//! Because it exploits asynchrony (computation reordering), it does not
//! provide BSP semantics — which is exactly the trade-off Figure 9 of the
//! GraphBolt paper probes: KickStarter wins on SSSP, where synchronous
//! guarantees are unnecessary.

pub mod sssp;
pub mod sswp;
pub mod wcc;

pub use sssp::KickStarterSssp;
pub use sswp::KickStarterSswp;
pub use wcc::KickStarterWcc;
