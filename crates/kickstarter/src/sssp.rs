//! Trimmed-approximation SSSP with dependence-tree tracking.

use std::collections::VecDeque;

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

/// Streaming single-source shortest paths à la KickStarter.
///
/// State per vertex: the current distance and the parent edge that
/// produced it (the *value dependence*). Mutations are incorporated as:
///
/// * **addition** `(u, v, w)` — relax: if `d(u) + w < d(v)`, adopt and
///   propagate (monotonic, no history needed),
/// * **deletion** `(u, v)` — if `(u, v)` is a dependence-tree edge, the
///   values of `v`'s dependence subtree are *untrusted*: tag the subtree,
///   reset tagged vertices to a safe approximation recomputed from
///   untagged in-neighbors only, then re-propagate to a fixpoint.
///
/// # Examples
///
/// ```
/// use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};
/// use graphbolt_kickstarter::KickStarterSssp;
///
/// let g = GraphBuilder::new(3)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 1.0)
///     .build();
/// let mut ks = KickStarterSssp::new(&g, 0);
/// assert_eq!(ks.distances()[2], 2.0);
///
/// let mut batch = MutationBatch::new();
/// batch.add(Edge::new(0, 2, 0.5));
/// let g2 = g.apply(&batch).unwrap();
/// ks.apply_batch(&g2, &batch);
/// assert_eq!(ks.distances()[2], 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct KickStarterSssp {
    source: VertexId,
    dist: Vec<f64>,
    parent: Vec<Option<VertexId>>,
    edge_computations: u64,
}

impl KickStarterSssp {
    /// Computes initial distances over `g` from `source`.
    pub fn new(g: &GraphSnapshot, source: VertexId) -> Self {
        let n = g.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let mut ks = Self {
            source,
            dist: vec![f64::INFINITY; n],
            parent: vec![None; n],
            edge_computations: 0,
        };
        ks.dist[source as usize] = 0.0;
        let worklist: VecDeque<VertexId> = std::iter::once(source).collect();
        ks.propagate(g, worklist);
        ks
    }

    /// Current distances.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Dependence-tree parent of each vertex.
    pub fn parents(&self) -> &[Option<VertexId>] {
        &self.parent
    }

    /// Source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Edge relaxations performed so far (the work measure compared
    /// against GraphBolt in Figure 9).
    pub fn edge_computations(&self) -> u64 {
        self.edge_computations
    }

    /// Incorporates a mutation batch. `new_g` must be the snapshot with
    /// `batch` already applied.
    pub fn apply_batch(&mut self, new_g: &GraphSnapshot, batch: &MutationBatch) {
        let n = new_g.num_vertices();
        if n > self.dist.len() {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, None);
        }

        // Phase 1: trim — tag subtrees hanging off deleted tree edges.
        let mut tagged = vec![false; n];
        let mut any_tagged = false;
        for e in batch.deletions() {
            if self.parent[e.dst as usize] == Some(e.src) && !tagged[e.dst as usize] {
                self.tag_subtree(new_g, e.dst, &mut tagged);
                any_tagged = true;
            }
        }

        let mut worklist: VecDeque<VertexId> = VecDeque::new();
        if any_tagged {
            // Reset tagged vertices, then recompute a safe approximation
            // from untagged in-neighbors (trimming: approximations are
            // upper bounds, so monotonic propagation restores exactness).
            for (v, &is_tagged) in tagged.iter().enumerate() {
                if is_tagged {
                    self.dist[v] = f64::INFINITY;
                    self.parent[v] = None;
                }
            }
            for v in 0..n as VertexId {
                if !tagged[v as usize] {
                    continue;
                }
                let mut best = f64::INFINITY;
                let mut best_parent = None;
                for (u, w) in new_g.in_edges(v) {
                    self.edge_computations += 1;
                    if tagged[u as usize] {
                        continue;
                    }
                    let cand = self.dist[u as usize] + w;
                    if cand < best {
                        best = cand;
                        best_parent = Some(u);
                    }
                }
                if best.is_finite() {
                    self.dist[v as usize] = best;
                    self.parent[v as usize] = best_parent;
                    worklist.push_back(v);
                }
            }
        }

        // Phase 2: relax additions.
        for e in batch.additions() {
            self.edge_computations += 1;
            let cand = self.dist[e.src as usize] + e.weight;
            if cand < self.dist[e.dst as usize] {
                self.dist[e.dst as usize] = cand;
                self.parent[e.dst as usize] = Some(e.src);
                worklist.push_back(e.dst);
            }
        }

        // Phase 3: monotonic propagation to fixpoint.
        self.propagate(new_g, worklist);
    }

    /// Tags the dependence subtree rooted at `root` (children are
    /// out-neighbors whose parent pointer leads back — the tree structure
    /// is re-derived from the graph, as KickStarter does).
    fn tag_subtree(&self, g: &GraphSnapshot, root: VertexId, tagged: &mut [bool]) {
        let mut queue = VecDeque::new();
        tagged[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &c in g.out_neighbors(v) {
                if !tagged[c as usize] && self.parent[c as usize] == Some(v) {
                    tagged[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }

    /// Asynchronous worklist relaxation (KickStarter leverages
    /// computation reordering; a FIFO worklist suffices for the
    /// fixpoint).
    fn propagate(&mut self, g: &GraphSnapshot, mut worklist: VecDeque<VertexId>) {
        let mut queued = vec![false; self.dist.len()];
        for &v in &worklist {
            queued[v as usize] = true;
        }
        while let Some(u) = worklist.pop_front() {
            queued[u as usize] = false;
            let du = self.dist[u as usize];
            for (v, w) in g.out_edges(u) {
                self.edge_computations += 1;
                let cand = du + w;
                if cand < self.dist[v as usize] {
                    self.dist[v as usize] = cand;
                    self.parent[v as usize] = Some(u);
                    if !queued[v as usize] {
                        queued[v as usize] = true;
                        worklist.push_back(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    fn dijkstra(g: &GraphSnapshot, source: VertexId) -> Vec<f64> {
        // Reference: plain Bellman–Ford over all edges.
        let n = g.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        dist[source as usize] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n as VertexId {
                if dist[u as usize].is_finite() {
                    for (v, w) in g.out_edges(u) {
                        if dist[u as usize] + w < dist[v as usize] {
                            dist[v as usize] = dist[u as usize] + w;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(6)
            .add_edge(0, 1, 2.0)
            .add_edge(0, 2, 4.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 3.0)
            .add_edge(1, 3, 6.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 5, 2.0)
            .build()
    }

    #[test]
    fn initial_distances_match_reference() {
        let g = sample();
        let ks = KickStarterSssp::new(&g, 0);
        assert_eq!(ks.distances(), dijkstra(&g, 0).as_slice());
    }

    #[test]
    fn addition_relaxes_forward() {
        let g = sample();
        let mut ks = KickStarterSssp::new(&g, 0);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 4, 1.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.distances(), dijkstra(&g2, 0).as_slice());
        assert_eq!(ks.distances()[4], 1.0);
        assert_eq!(ks.distances()[5], 3.0);
    }

    #[test]
    fn tree_edge_deletion_trims_and_recovers() {
        let g = sample();
        let mut ks = KickStarterSssp::new(&g, 0);
        // 2→3 is the tree edge for 3 (0→1→2→3 = 6).
        assert_eq!(ks.parents()[3], Some(2));
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(2, 3, 3.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.distances(), dijkstra(&g2, 0).as_slice());
        assert_eq!(ks.distances()[3], 8.0); // via 1→3
    }

    #[test]
    fn non_tree_deletion_is_cheap() {
        let g = sample();
        let mut ks = KickStarterSssp::new(&g, 0);
        let before = ks.edge_computations();
        // 1→3 (weight 6) is not on any shortest path tree.
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(1, 3, 6.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.distances(), dijkstra(&g2, 0).as_slice());
        // Only the addition/deletion bookkeeping, no propagation wave.
        assert!(ks.edge_computations() - before <= 2);
    }

    #[test]
    fn disconnection_leaves_infinity() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let mut ks = KickStarterSssp::new(&g, 0);
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(1, 2, 1.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert!(ks.distances()[2].is_infinite());
        assert_eq!(ks.parents()[2], None);
    }

    #[test]
    fn vertex_growth_is_supported() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let mut ks = KickStarterSssp::new(&g, 0);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(1, 4, 2.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.distances()[4], 3.0);
        assert!(ks.distances()[3].is_infinite());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        #[test]
        fn streaming_always_matches_reference(seed in 0u64..600) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4..20usize);
            let mut edges = Vec::new();
            for u in 0..n as VertexId {
                for v in 0..n as VertexId {
                    if u != v && rng.gen_bool(0.25) {
                        edges.push(Edge::new(u, v, rng.gen_range(0.1..2.0)));
                    }
                }
            }
            let mut g = GraphSnapshot::from_edges(n, &edges);
            let mut ks = KickStarterSssp::new(&g, 0);
            for _ in 0..5 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if g.has_edge(u, v) {
                        batch.delete(Edge::unweighted(u, v));
                    } else {
                        batch.add(Edge::new(u, v, rng.gen_range(0.1..2.0)));
                    }
                }
                let batch = batch.normalize_against(&g);
                if batch.is_empty() { continue; }
                g = g.apply(&batch).unwrap();
                ks.apply_batch(&g, &batch);
                let expected = dijkstra(&g, 0);
                for (v, &b) in expected.iter().enumerate().take(n) {
                    let a = ks.distances()[v];
                    proptest::prop_assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                        "vertex {}: {} vs {}", v, a, b
                    );
                }
            }
        }
    }
}
