//! Trimmed-approximation connected components — KickStarter's second
//! flagship monotonic algorithm.
//!
//! Identical machinery to [`KickStarterSssp`](crate::KickStarterSssp)
//! with the min-label lattice instead of min-plus distances: each vertex
//! tracks its component label and the dependence (the in-edge its label
//! arrived over). Deleting a dependence edge untrusts the subtree, which
//! is reset and re-approximated from untagged neighbors before monotone
//! re-propagation.

use std::collections::VecDeque;

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

/// Streaming min-label connected components à la KickStarter.
///
/// Labels propagate along *directed* edges; run on a symmetrized graph
/// for undirected components.
#[derive(Debug, Clone)]
pub struct KickStarterWcc {
    label: Vec<VertexId>,
    parent: Vec<Option<VertexId>>,
    edge_computations: u64,
}

impl KickStarterWcc {
    /// Computes initial labels over `g`.
    pub fn new(g: &GraphSnapshot) -> Self {
        let n = g.num_vertices();
        let mut ks = Self {
            label: (0..n as VertexId).collect(),
            parent: vec![None; n],
            edge_computations: 0,
        };
        let worklist: VecDeque<VertexId> = (0..n as VertexId).collect();
        ks.propagate(g, worklist);
        ks
    }

    /// Current component labels.
    pub fn labels(&self) -> &[VertexId] {
        &self.label
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        let mut seen = self.label.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Edge relaxations performed so far.
    pub fn edge_computations(&self) -> u64 {
        self.edge_computations
    }

    /// Incorporates a mutation batch. `new_g` must be the snapshot with
    /// `batch` already applied.
    pub fn apply_batch(&mut self, new_g: &GraphSnapshot, batch: &MutationBatch) {
        let n = new_g.num_vertices();
        if n > self.label.len() {
            let start = self.label.len() as VertexId;
            self.label.extend(start..n as VertexId);
            self.parent.resize(n, None);
        }

        // Trim subtrees hanging off deleted dependence edges.
        let mut tagged = vec![false; n];
        let mut any_tagged = false;
        for e in batch.deletions() {
            if self.parent[e.dst as usize] == Some(e.src) && !tagged[e.dst as usize] {
                self.tag_subtree(new_g, e.dst, &mut tagged);
                any_tagged = true;
            }
        }

        let mut worklist: VecDeque<VertexId> = VecDeque::new();
        if any_tagged {
            for v in 0..n as VertexId {
                if tagged[v as usize] {
                    self.label[v as usize] = v;
                    self.parent[v as usize] = None;
                }
            }
            for v in 0..n as VertexId {
                if !tagged[v as usize] {
                    continue;
                }
                for (u, _) in new_g.in_edges(v) {
                    self.edge_computations += 1;
                    if tagged[u as usize] {
                        continue;
                    }
                    if self.label[u as usize] < self.label[v as usize] {
                        self.label[v as usize] = self.label[u as usize];
                        self.parent[v as usize] = Some(u);
                    }
                }
                worklist.push_back(v);
            }
        }

        for e in batch.additions() {
            self.edge_computations += 1;
            if self.label[e.src as usize] < self.label[e.dst as usize] {
                self.label[e.dst as usize] = self.label[e.src as usize];
                self.parent[e.dst as usize] = Some(e.src);
                worklist.push_back(e.dst);
            }
        }

        self.propagate(new_g, worklist);
    }

    fn tag_subtree(&self, g: &GraphSnapshot, root: VertexId, tagged: &mut [bool]) {
        let mut queue = VecDeque::new();
        tagged[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &c in g.out_neighbors(v) {
                if !tagged[c as usize] && self.parent[c as usize] == Some(v) {
                    tagged[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }

    fn propagate(&mut self, g: &GraphSnapshot, mut worklist: VecDeque<VertexId>) {
        let mut queued = vec![false; self.label.len()];
        for &v in &worklist {
            queued[v as usize] = true;
        }
        while let Some(u) = worklist.pop_front() {
            queued[u as usize] = false;
            let lu = self.label[u as usize];
            for (v, _) in g.out_edges(u) {
                self.edge_computations += 1;
                if lu < self.label[v as usize] {
                    self.label[v as usize] = lu;
                    self.parent[v as usize] = Some(u);
                    if !queued[v as usize] {
                        queued[v as usize] = true;
                        worklist.push_back(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    /// Reference: union-find over the symmetric closure of directed
    /// label reachability — here simply iterate min-label to fixpoint.
    fn reference(g: &GraphSnapshot) -> Vec<VertexId> {
        let n = g.num_vertices();
        let mut label: Vec<VertexId> = (0..n as VertexId).collect();
        loop {
            let mut changed = false;
            for u in 0..n as VertexId {
                for v in g.out_neighbors(u) {
                    if label[u as usize] < label[*v as usize] {
                        label[*v as usize] = label[u as usize];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    fn two_triangles() -> GraphSnapshot {
        GraphBuilder::new(6)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 0, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 5, 1.0)
            .add_edge(5, 3, 1.0)
            .build()
    }

    #[test]
    fn initial_labels_match_reference() {
        let g = two_triangles();
        let ks = KickStarterWcc::new(&g);
        assert_eq!(ks.labels(), reference(&g).as_slice());
        assert_eq!(ks.component_count(), 2);
    }

    #[test]
    fn addition_merges() {
        let g = two_triangles();
        let mut ks = KickStarterWcc::new(&g);
        let mut batch = MutationBatch::new();
        batch
            .add(Edge::unweighted(2, 3))
            .add(Edge::unweighted(3, 2));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.labels(), reference(&g2).as_slice());
        assert_eq!(ks.component_count(), 1);
    }

    #[test]
    fn deletion_splits() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let mut ks = KickStarterWcc::new(&g);
        assert_eq!(ks.component_count(), 1);
        let mut batch = MutationBatch::new();
        batch
            .delete(Edge::unweighted(1, 2))
            .delete(Edge::unweighted(2, 1));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.labels(), reference(&g2).as_slice());
        assert_eq!(ks.component_count(), 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        #[test]
        fn streaming_always_matches_reference(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4..20usize);
            let mut b = GraphBuilder::new(n).symmetric(true);
            for _ in 0..n {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, 1.0);
                }
            }
            let mut g = b.build();
            let mut ks = KickStarterWcc::new(&g);
            for _ in 0..5 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if g.has_edge(u, v) {
                        batch.delete(Edge::unweighted(u, v));
                    } else {
                        batch.add(Edge::unweighted(u, v));
                    }
                }
                let batch = batch.normalize_against(&g);
                if batch.is_empty() { continue; }
                g = g.apply(&batch).unwrap();
                ks.apply_batch(&g, &batch);
                let expected = reference(&g);
                proptest::prop_assert_eq!(ks.labels(), expected.as_slice());
            }
        }
    }
}
