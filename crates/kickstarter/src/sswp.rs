//! Trimmed-approximation widest paths — KickStarter's third monotonic
//! algorithm (max-min bottleneck widths).
//!
//! Same trim/tag/re-propagate machinery as
//! [`KickStarterSssp`](crate::KickStarterSssp) on the `max(min(·, w))`
//! lattice: widths only grow during propagation, so trimmed
//! approximations (which are *lower* bounds here) recover exactness
//! monotonically.

use std::collections::VecDeque;

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

/// Streaming single-source widest paths à la KickStarter.
#[derive(Debug, Clone)]
pub struct KickStarterSswp {
    source: VertexId,
    width: Vec<f64>,
    parent: Vec<Option<VertexId>>,
    edge_computations: u64,
}

impl KickStarterSswp {
    /// Computes initial widths over `g` from `source`.
    pub fn new(g: &GraphSnapshot, source: VertexId) -> Self {
        let n = g.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let mut ks = Self {
            source,
            width: vec![0.0; n],
            parent: vec![None; n],
            edge_computations: 0,
        };
        ks.width[source as usize] = f64::INFINITY;
        let worklist: VecDeque<VertexId> = std::iter::once(source).collect();
        ks.propagate(g, worklist);
        ks
    }

    /// Current widths (`+∞` at the source, 0 when unreached).
    pub fn widths(&self) -> &[f64] {
        &self.width
    }

    /// Dependence-tree parent of each vertex.
    pub fn parents(&self) -> &[Option<VertexId>] {
        &self.parent
    }

    /// Source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Edge relaxations performed so far.
    pub fn edge_computations(&self) -> u64 {
        self.edge_computations
    }

    /// Incorporates a mutation batch. `new_g` must be the snapshot with
    /// `batch` already applied.
    pub fn apply_batch(&mut self, new_g: &GraphSnapshot, batch: &MutationBatch) {
        let n = new_g.num_vertices();
        if n > self.width.len() {
            self.width.resize(n, 0.0);
            self.parent.resize(n, None);
        }

        // Trim subtrees hanging off deleted dependence edges.
        let mut tagged = vec![false; n];
        let mut any_tagged = false;
        for e in batch.deletions() {
            if self.parent[e.dst as usize] == Some(e.src) && !tagged[e.dst as usize] {
                self.tag_subtree(new_g, e.dst, &mut tagged);
                any_tagged = true;
            }
        }

        let mut worklist: VecDeque<VertexId> = VecDeque::new();
        if any_tagged {
            for (v, &is_tagged) in tagged.iter().enumerate() {
                if is_tagged {
                    self.width[v] = 0.0;
                    self.parent[v] = None;
                }
            }
            for v in 0..n as VertexId {
                if !tagged[v as usize] {
                    continue;
                }
                let mut best = 0.0f64;
                let mut best_parent = None;
                for (u, w) in new_g.in_edges(v) {
                    self.edge_computations += 1;
                    if tagged[u as usize] {
                        continue;
                    }
                    let cand = self.width[u as usize].min(w);
                    if cand > best {
                        best = cand;
                        best_parent = Some(u);
                    }
                }
                if best > 0.0 {
                    self.width[v as usize] = best;
                    self.parent[v as usize] = best_parent;
                    worklist.push_back(v);
                }
            }
        }

        for e in batch.additions() {
            self.edge_computations += 1;
            let cand = self.width[e.src as usize].min(e.weight);
            if cand > self.width[e.dst as usize] {
                self.width[e.dst as usize] = cand;
                self.parent[e.dst as usize] = Some(e.src);
                worklist.push_back(e.dst);
            }
        }

        self.propagate(new_g, worklist);
    }

    fn tag_subtree(&self, g: &GraphSnapshot, root: VertexId, tagged: &mut [bool]) {
        let mut queue = VecDeque::new();
        tagged[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &c in g.out_neighbors(v) {
                if !tagged[c as usize] && self.parent[c as usize] == Some(v) {
                    tagged[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }

    fn propagate(&mut self, g: &GraphSnapshot, mut worklist: VecDeque<VertexId>) {
        let mut queued = vec![false; self.width.len()];
        for &v in &worklist {
            queued[v as usize] = true;
        }
        while let Some(u) = worklist.pop_front() {
            queued[u as usize] = false;
            let wu = self.width[u as usize];
            for (v, w) in g.out_edges(u) {
                self.edge_computations += 1;
                let cand = wu.min(w);
                if cand > self.width[v as usize] {
                    self.width[v as usize] = cand;
                    self.parent[v as usize] = Some(u);
                    if !queued[v as usize] {
                        queued[v as usize] = true;
                        worklist.push_back(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    /// Reference: iterate max-min to fixpoint.
    fn reference(g: &GraphSnapshot, source: VertexId) -> Vec<f64> {
        let n = g.num_vertices();
        let mut width = vec![0.0f64; n];
        width[source as usize] = f64::INFINITY;
        loop {
            let mut changed = false;
            for u in 0..n as VertexId {
                if width[u as usize] > 0.0 {
                    for (v, w) in g.out_edges(u) {
                        let cand = width[u as usize].min(w);
                        if cand > width[v as usize] {
                            width[v as usize] = cand;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        width
    }

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(5)
            .add_edge(0, 1, 5.0)
            .add_edge(1, 3, 2.0)
            .add_edge(0, 2, 3.0)
            .add_edge(2, 3, 4.0)
            .add_edge(3, 4, 1.0)
            .build()
    }

    #[test]
    fn initial_widths_match_reference() {
        let g = sample();
        let ks = KickStarterSswp::new(&g, 0);
        assert_eq!(ks.widths(), reference(&g, 0).as_slice());
        assert_eq!(ks.widths()[3], 3.0);
    }

    #[test]
    fn tree_edge_deletion_trims_and_recovers() {
        let g = sample();
        let mut ks = KickStarterSswp::new(&g, 0);
        assert_eq!(ks.parents()[3], Some(2));
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(2, 3, 4.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.widths(), reference(&g2, 0).as_slice());
        assert_eq!(ks.widths()[3], 2.0);
    }

    #[test]
    fn addition_widens_monotonically() {
        let g = sample();
        let mut ks = KickStarterSswp::new(&g, 0);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 4, 7.0));
        let g2 = g.apply(&batch).unwrap();
        ks.apply_batch(&g2, &batch);
        assert_eq!(ks.widths(), reference(&g2, 0).as_slice());
        assert_eq!(ks.widths()[4], 7.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        #[test]
        fn streaming_always_matches_reference(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4..18usize);
            let mut edges = Vec::new();
            for u in 0..n as VertexId {
                for v in 0..n as VertexId {
                    if u != v && rng.gen_bool(0.25) {
                        edges.push(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.5));
                    }
                }
            }
            let mut g = GraphSnapshot::from_edges(n, &edges);
            let mut ks = KickStarterSswp::new(&g, 0);
            for _ in 0..5 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if g.has_edge(u, v) {
                        batch.delete(Edge::new(u, v, g.edge_weight(u, v).unwrap()));
                    } else {
                        batch.add(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.5));
                    }
                }
                let batch = batch.normalize_against(&g);
                if batch.is_empty() { continue; }
                g = g.apply(&batch).unwrap();
                ks.apply_batch(&g, &batch);
                let expected = reference(&g, 0);
                proptest::prop_assert_eq!(ks.widths(), expected.as_slice());
            }
        }
    }
}
