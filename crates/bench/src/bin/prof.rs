//! Scratch profiling binary (not part of the published harness).
use graphbolt_bench::experiments::perf::run_perf;
use graphbolt_bench::workloads::GraphSpec;
use graphbolt_graph::WorkloadBias;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let batch: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let m = run_perf(GraphSpec::at_scale(scale), &[batch], WorkloadBias::Uniform);
    for (name, costs) in &m.results {
        let c = &costs[0];
        println!(
            "{name:5} ratio {:.3}  ligra {:.1}ms reset {:.1}ms gb {:.1}ms  (x_reset {:.2})",
            c.edge_ratio(),
            c.ligra_secs * 1e3,
            c.gb_reset_secs * 1e3,
            c.graphbolt_secs * 1e3,
            c.speedup_vs_gb_reset()
        );
    }
}
