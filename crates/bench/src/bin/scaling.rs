//! `scaling` — runs the thread-scaling sweep and writes
//! `BENCH_scaling.json` at the workspace root.
//!
//! ```text
//! scaling [--scale N] [--threads 1,2,4,8] [--batches B] [--batch-size S]
//! ```

use graphbolt_bench::experiments::scaling::{run_scaling, to_json};
use graphbolt_bench::workloads::GraphSpec;

struct Args {
    scale: u32,
    threads: Vec<usize>,
    batches: usize,
    batch_size: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 20,
        threads: vec![1, 2, 4, 8],
        batches: 4,
        batch_size: 0, // 0 = derive from scale below
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--scale" => {
                args.scale = value("--scale").parse().unwrap_or_else(|_| die("bad --scale"));
            }
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad --threads")))
                    .collect();
            }
            "--batches" => {
                args.batches = value("--batches")
                    .parse()
                    .unwrap_or_else(|_| die("bad --batches"));
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")
                    .parse()
                    .unwrap_or_else(|_| die("bad --batch-size"));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.threads.is_empty() {
        die("--threads needs at least one entry");
    }
    if args.batch_size == 0 {
        // ~|E|/2^9 like the repro core sizes: big enough to refine real
        // frontiers, small enough to stay incremental.
        args.batch_size = (((1usize << args.scale) * 4) >> 9).max(1);
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    eprintln!("usage: scaling [--scale N] [--threads 1,2,4,8] [--batches B] [--batch-size S]");
}

fn main() {
    let args = parse_args();
    let spec = GraphSpec::at_scale(args.scale);
    eprintln!(
        "[scaling] rmat scale {} | threads {:?} | {} batches x {} mutations",
        args.scale, args.threads, args.batches, args.batch_size
    );
    let rows = run_scaling(spec, &args.threads, args.batches, args.batch_size);
    for row in &rows {
        eprintln!(
            "[scaling] t={} initial {:.3}s refine {:.3}s (tag {:.1}ms, propagate {:.1}ms, \
             apply {:.1}ms) edge_map {:.1} ME/s",
            row.threads,
            row.initial_secs,
            row.refine_secs,
            row.phases.tag as f64 / 1e6,
            row.phases.propagate as f64 / 1e6,
            row.phases.apply as f64 / 1e6,
            row.edge_map_medges_per_sec,
        );
    }
    let json = to_json(spec, args.batch_size, &rows);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scaling.json");
    std::fs::write(&path, json).expect("write BENCH_scaling.json");
    eprintln!("wrote {}", path.display());
}
