//! `repro` — regenerates every table and figure of the GraphBolt paper's
//! evaluation section at laptop scale.
//!
//! ```text
//! repro <experiment> [--scale N] [--threads N]
//!
//! experiments:
//!   table1 fig2 fig4                 motivation (§2)
//!   table5 fig6 table6 table7        performance matrix (§5.2)
//!   fig7 table8                      sensitivity (§5.3)
//!   fig8 fig9                        system comparisons (§5.4)
//!   table9                           memory overhead (§5.5)
//!   structure                        graph-family sensitivity (§5.2 note)
//!   scaling                          thread-scaling sweep (DESIGN.md §3.6)
//!   ablation                         design-choice ablations
//!   all                              everything above
//! ```

use graphbolt_bench::experiments::{
    ablation, fig8, fig9, motivation, scaling, structure, table9, tables,
};
use graphbolt_bench::report::Table;
use graphbolt_bench::workloads::GraphSpec;

struct Args {
    experiment: String,
    scale: u32,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut experiment = String::from("all");
    let mut scale = GraphSpec::default_scale().scale;
    let mut threads = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs an integer"));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&t: &usize| t > 0)
                        .unwrap_or_else(|| die("--threads needs a positive integer")),
                );
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }
    Args {
        experiment,
        scale,
        threads,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    eprintln!(
        "usage: repro <table1|fig2|fig4|table5|fig6|table6|table7|fig7|table8|fig8|fig9|table9|structure|scaling|ablation|all> [--scale N] [--threads N]"
    );
}

fn show(tables: Vec<Table>) {
    for t in tables {
        println!("{}", t.render());
    }
}

fn main() {
    let args = parse_args();
    if let Some(threads) = args.threads {
        // Best-effort: the global pool can only be sized once per
        // process; experiments that build scoped pools are unaffected.
        let _ = graphbolt_engine::parallel::set_global_threads(threads);
    }
    let spec = GraphSpec::at_scale(args.scale);
    // Batch sizes proportional to the synthetic graphs: the paper's
    // 1K/10K/100K batches on ~1B-edge inputs are ≤ 1e-4 of the edges, so
    // sizes here scale with the generated graph (≈ |E|/2^12, /2^9, /2^6).
    let edges_loaded = (1usize << spec.scale) * 4; // ~50% of edge_factor 8
    let rel = |shift: u32| (edges_loaded >> shift).max(1);
    let core_sizes = [rel(12), rel(9), rel(6)];
    let sweep_sizes = [1usize, rel(12), rel(10), rel(8), rel(6), rel(4)];
    let cmp_sizes = [1usize, rel(12), rel(10), rel(8), rel(6)];

    let run = |name: &str| {
        eprintln!("[repro] running {name} at scale {} ...", args.scale);
        match name {
            "table1" => show(vec![motivation::table1(spec, 10, 100)]),
            "fig2" => show(vec![motivation::fig2()]),
            "fig4" => show(vec![motivation::fig4(spec, 10)]),
            "table5" => show(vec![tables::table5(spec, &core_sizes)]),
            "fig6" => show(vec![tables::fig6(spec, &core_sizes)]),
            "table6" => show(tables::table6(spec, &[1, 2, 4], rel(9))),
            "table7" => show(vec![tables::table7(spec, &core_sizes)]),
            "fig7" => show(vec![tables::fig7(spec, &sweep_sizes)]),
            "table8" => show(vec![tables::table8(spec, rel(9))]),
            "fig8" => show(vec![fig8::fig8a(spec, &cmp_sizes), fig8::fig8b(spec, 100)]),
            "fig9" => show(vec![
                fig9::fig9a(spec, &cmp_sizes),
                fig9::fig9b(spec, &cmp_sizes),
            ]),
            "table9" => show(vec![table9::table9(spec)]),
            "structure" => show(vec![structure::structure(spec, rel(9))]),
            "scaling" => show(vec![scaling::table(&scaling::run_scaling(
                spec,
                &[1, 2, 4, 8],
                4,
                rel(9),
            ))]),
            "ablation" => show(vec![
                ablation::vertical_pruning(spec, rel(9)),
                ablation::horizontal_cutoff(spec, rel(9)),
                ablation::fused_delta(spec, rel(9)),
                ablation::min_strategies(spec, rel(9)),
            ]),
            other => die(&format!("unknown experiment {other}")),
        }
    };

    if args.experiment == "all" {
        for name in [
            "fig2",
            "fig4",
            "table1",
            "table5",
            "fig6",
            "table7",
            "fig7",
            "table8",
            "fig8",
            "fig9",
            "table9",
            "table6",
            "structure",
            "scaling",
            "ablation",
        ] {
            run(name);
        }
    } else {
        run(&args.experiment);
    }
}
