//! Timing helpers.

use std::time::{Duration, Instant};

/// A value with the wall-clock time it took to produce.
#[derive(Debug, Clone)]
pub struct TimedResult<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock time.
    pub duration: Duration,
}

impl<T> TimedResult<T> {
    /// Elapsed seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.duration.as_secs_f64()
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> TimedResult<T> {
    let start = Instant::now();
    let value = f();
    TimedResult {
        value,
        duration: start.elapsed(),
    }
}

/// Geometric mean of positive samples (used for speedup summaries).
pub fn geomean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

/// Sample standard deviation (Figure 8b reports single-edge variance).
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let r = time(|| 2 + 2);
        assert_eq!(r.value, 4);
        assert!(r.secs() >= 0.0);
    }

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn std_dev_known_case() {
        let s = std_dev(&[2.0, 4.0]);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
