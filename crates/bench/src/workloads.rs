//! Benchmark workload construction.
//!
//! The paper's graphs (Wiki … Yahoo, 0.4–6.6 B edges) are substituted
//! with R-MAT graphs (see DESIGN.md §2); the mutation methodology is the
//! paper's: load 50% of the edges, stream the rest as additions mixed
//! with deletions sampled from the loaded graph.

use graphbolt_graph::generators::{rmat, RmatConfig};
use graphbolt_graph::{GraphSnapshot, MutationStream, StreamConfig, WorkloadBias};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Size/shape of a benchmark graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// log2 of vertex count.
    pub scale: u32,
    /// Average out-degree of sampled edges.
    pub edge_factor: usize,
    /// Generator seed.
    pub seed: u64,
}

impl GraphSpec {
    /// The default benchmark graph: 2^16 vertices, ~8 edges/vertex
    /// sampled (sized so the full table/figure suite completes in
    /// minutes; raise `scale` via the CLI for bigger runs).
    pub fn default_scale() -> Self {
        Self {
            scale: 16,
            edge_factor: 8,
            seed: 0x6B01,
        }
    }

    /// Same shape at a custom scale.
    pub fn at_scale(scale: u32) -> Self {
        Self {
            scale,
            ..Self::default_scale()
        }
    }

    /// Generates the full edge population for this spec.
    pub fn edges(&self) -> Vec<graphbolt_graph::Edge> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        rmat(&RmatConfig::new(self.scale, self.edge_factor), &mut rng)
    }
}

/// Builds a complete snapshot (all edges loaded) for experiments that
/// don't stream.
pub fn standard_graph(spec: GraphSpec) -> GraphSnapshot {
    let edges = spec.edges();
    let n = graphbolt_graph::generators::vertex_count(&edges).max(1 << spec.scale);
    GraphSnapshot::from_edges(n, &edges)
}

/// Builds the paper-methodology stream: 50% loaded, the rest streamed
/// with 10% deletions mixed in.
pub fn standard_stream(spec: GraphSpec, bias: WorkloadBias) -> MutationStream {
    let cfg = StreamConfig {
        load_fraction: 0.5,
        deletion_fraction: 0.1,
        bias,
        seed: spec.seed ^ 0x5EED,
    };
    MutationStream::new(spec.edges(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_generates_nonempty_graph() {
        let g = standard_graph(GraphSpec::at_scale(8));
        assert!(g.num_edges() > 100);
        assert!(g.num_vertices() >= 256);
    }

    #[test]
    fn stream_yields_consistent_batches() {
        let mut stream = standard_stream(GraphSpec::at_scale(8), WorkloadBias::Uniform);
        let g = stream.initial_snapshot();
        let batch = stream.next_batch(&g, 100).unwrap();
        assert!(batch.validate(&g).is_ok());
    }

    #[test]
    fn specs_are_deterministic() {
        let a = GraphSpec::at_scale(8).edges();
        let b = GraphSpec::at_scale(8).edges();
        assert_eq!(a, b);
    }
}
