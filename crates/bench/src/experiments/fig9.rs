//! Figure 9: SSSP — KickStarter vs GraphBolt vs (mini) Differential
//! Dataflow, with mixed mutations (9a) and additions only (9b).

use graphbolt_algorithms::{ShortestPaths, ShortestPathsMultiset};
use graphbolt_core::StreamingEngine;
use graphbolt_graph::{StreamConfig, WorkloadBias};
use graphbolt_kickstarter::KickStarterSssp;
use graphbolt_minidd::DdSssp;

use super::common::bench_options;
use super::suite::draw_batches;
use crate::harness::time;
use crate::report::{fmt_secs, Table};
use crate::workloads::GraphSpec;

fn run(spec: GraphSpec, batch_sizes: &[usize], deletions: bool) -> Table {
    let title = if deletions {
        "Figure 9a: SSSP — edge additions & deletions"
    } else {
        "Figure 9b: SSSP — edge additions only"
    };
    let mut t = Table::new(
        title,
        vec![
            "batch",
            "KickStarter",
            "GraphBolt",
            "GraphBolt-OM",
            "DiffDataflow",
        ],
    );
    for &size in batch_sizes {
        let cfg = StreamConfig {
            deletion_fraction: if deletions { 0.5 } else { 0.0 },
            bias: WorkloadBias::Uniform,
            ..StreamConfig::default()
        };
        let mut stream = graphbolt_graph::MutationStream::new(spec.edges(), cfg);
        let g0 = stream.initial_snapshot();
        let Some(batch) = draw_batches(&mut stream, &g0, &[size]).into_iter().next() else {
            continue;
        };
        let g1 = g0.apply(&batch).unwrap();
        let source = pick_source(&g0);

        let mut ks = KickStarterSssp::new(&g0, source);
        let ks_t = time(|| ks.apply_batch(&g1, &batch));

        let mut gb = StreamingEngine::new(g0.clone(), ShortestPaths::new(source), bench_options());
        gb.run_initial();
        let gb_t = time(|| gb.apply_batch(&batch).unwrap());

        // The §5.4 extension: min as an ordered map of values and counts.
        let mut om = StreamingEngine::new(
            g0.clone(),
            ShortestPathsMultiset::new(source),
            bench_options(),
        );
        om.run_initial();
        let om_t = time(|| om.apply_batch(&batch).unwrap());

        let mut dd = DdSssp::new(&g0, source, super::common::ITERS);
        let dd_t = time(|| dd.apply_batch(&batch));

        // Cross-validate within the common horizon: GraphBolt and DD run
        // the same fixed iteration count, so their distances agree.
        debug_assert!(gb
            .values()
            .iter()
            .zip(dd.distances())
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9));

        debug_assert!(gb
            .values()
            .iter()
            .zip(om.values())
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9));
        t.row(vec![
            format!("{}", batch.len()),
            fmt_secs(ks_t.secs()),
            fmt_secs(gb_t.secs()),
            fmt_secs(om_t.secs()),
            fmt_secs(dd_t.secs()),
        ]);
    }
    t
}

/// Picks a well-connected source (highest out-degree) so paths reach a
/// large fraction of the graph.
fn pick_source(g: &graphbolt_graph::GraphSnapshot) -> u32 {
    (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0)
}

/// Figure 9a: additions and deletions mixed 50/50.
pub fn fig9a(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    run(spec, batch_sizes, true)
}

/// Figure 9b: additions only (no `min` re-evaluation needed).
pub fn fig9b(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    run(spec, batch_sizes, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_measures_three_systems() {
        let a = fig9a(GraphSpec::at_scale(7), &[5]);
        assert_eq!(a.len(), 1);
        let b = fig9b(GraphSpec::at_scale(7), &[5]);
        assert_eq!(b.len(), 1);
    }
}
