//! The benchmark algorithm suite: uniform drivers over the six
//! heterogeneously-typed algorithms of Table 4.

use graphbolt_algorithms::{
    BeliefPropagation, CoEm, CollaborativeFiltering, LabelPropagation, PageRank, TriangleCounter,
};
use graphbolt_core::{Algorithm, StreamingEngine};
use graphbolt_graph::{GraphSnapshot, MutationBatch, MutationStream};

use super::common::{bench_options, measure_strategies, measure_tc, StrategyCosts};

/// A type-erased driver: initializes on the snapshot, then measures the
/// batch sequence.
pub type SuiteRunner = Box<dyn Fn(&GraphSnapshot, &[MutationBatch]) -> Vec<StrategyCosts>>;

/// Names of the suite algorithms, in the paper's Table 5 order.
pub const SUITE_NAMES: [&str; 6] = ["PR", "BP", "CF", "CoEM", "LP", "TC"];

fn run_engine_algo<A: Algorithm + Clone + 'static>(
    alg: A,
    g0: &GraphSnapshot,
    batches: &[MutationBatch],
) -> Vec<StrategyCosts> {
    let opts = bench_options();
    let mut engine = StreamingEngine::new(g0.clone(), alg, opts);
    engine.run_initial();
    batches
        .iter()
        .map(|b| measure_strategies(&mut engine, b, &opts))
        .collect()
}

fn run_tc(g0: &GraphSnapshot, batches: &[MutationBatch]) -> Vec<StrategyCosts> {
    let mut tc = TriangleCounter::new(g0);
    let mut g = g0.clone();
    batches
        .iter()
        .map(|b| {
            let costs = measure_tc(&mut tc, &g, b);
            g = g.apply(b).expect("benchmark batch must validate");
            costs
        })
        .collect()
}

/// Selective-scheduling tolerance used by the benchmark suite. Coarser
/// than the library defaults, matching the thresholds production engines
/// use (Ligra's PageRankDelta-style scheduling): sub-threshold ripples
/// neither propagate in the baselines nor in refinement, which is what
/// gives streaming engines their locality on real workloads.
pub const BENCH_TOLERANCE: f64 = 1e-3;

/// Builds the full suite for a graph with `n` vertices (`n` parameterizes
/// the synthetic seed sets of LP and CoEM).
pub fn suite(n: usize) -> Vec<(&'static str, SuiteRunner)> {
    vec![
        (
            "PR",
            Box::new(|g: &GraphSnapshot, b: &[MutationBatch]| {
                run_engine_algo(PageRank::with_tolerance(BENCH_TOLERANCE), g, b)
            }) as SuiteRunner,
        ),
        (
            "BP",
            Box::new(|g: &GraphSnapshot, b: &[MutationBatch]| {
                // Weakly coupled MRF — loopy BP's well-behaved regime.
                let mut alg = BeliefPropagation::with_coupling(0.1);
                alg.tolerance = BENCH_TOLERANCE;
                run_engine_algo(alg, g, b)
            }),
        ),
        (
            "CF",
            Box::new(|g: &GraphSnapshot, b: &[MutationBatch]| {
                let alg = CollaborativeFiltering {
                    tolerance: BENCH_TOLERANCE,
                    lambda: 2.0,
                    ..Default::default()
                };
                run_engine_algo(alg, g, b)
            }),
        ),
        (
            "CoEM",
            Box::new(move |g: &GraphSnapshot, b: &[MutationBatch]| {
                let mut alg = CoEm::with_synthetic_seeds(n, 10);
                alg.tolerance = BENCH_TOLERANCE;
                run_engine_algo(alg, g, b)
            }),
        ),
        (
            "LP",
            Box::new(move |g: &GraphSnapshot, b: &[MutationBatch]| {
                let mut alg = LabelPropagation::with_synthetic_seeds(4, n, 10);
                alg.tolerance = BENCH_TOLERANCE;
                run_engine_algo(alg, g, b)
            }),
        ),
        ("TC", Box::new(run_tc)),
    ]
}

/// Draws a sequence of consistent batches of the given sizes from a
/// stream (each validates against the graph produced by its
/// predecessors). Returns fewer batches if the stream runs dry.
pub fn draw_batches(
    stream: &mut MutationStream,
    g0: &GraphSnapshot,
    sizes: &[usize],
) -> Vec<MutationBatch> {
    let mut g = g0.clone();
    let mut out = Vec::new();
    for &size in sizes {
        match stream.next_batch(&g, size) {
            Some(batch) => {
                g = g.apply(&batch).expect("stream batches validate");
                out.push(batch);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{standard_stream, GraphSpec};
    use graphbolt_graph::WorkloadBias;

    #[test]
    fn every_suite_algorithm_runs() {
        let mut stream = standard_stream(GraphSpec::at_scale(7), WorkloadBias::Uniform);
        let g = stream.initial_snapshot();
        let batches = draw_batches(&mut stream, &g, &[10]);
        assert_eq!(batches.len(), 1);
        for (name, runner) in suite(g.num_vertices()) {
            let costs = runner(&g, &batches);
            assert_eq!(costs.len(), 1, "{name} produced no measurement");
            assert!(costs[0].graphbolt_edges > 0 || name == "TC");
        }
    }

    #[test]
    fn draw_batches_produces_consistent_sequence() {
        let mut stream = standard_stream(GraphSpec::at_scale(7), WorkloadBias::Uniform);
        let g0 = stream.initial_snapshot();
        let batches = draw_batches(&mut stream, &g0, &[5, 10, 20]);
        assert_eq!(batches.len(), 3);
        let mut g = g0;
        for b in &batches {
            assert!(b.validate(&g).is_ok());
            g = g.apply(b).unwrap();
        }
    }
}
