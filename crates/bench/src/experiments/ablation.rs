//! Ablation studies on GraphBolt's design choices (DESIGN.md §5):
//! vertical pruning, the horizontal cut-off / hybrid execution, and
//! fused deltas vs retract+propagate.

use graphbolt_algorithms::{LabelPropagation, PageRank};
use graphbolt_core::{Algorithm, EngineOptions, StreamingEngine};
use graphbolt_graph::{GraphSnapshot, MutationBatch, WorkloadBias};

use super::common::ITERS;
use super::suite::draw_batches;
use crate::harness::time;
use crate::report::{fmt_count, fmt_secs, Table};
use crate::workloads::{standard_stream, GraphSpec};

fn refine_cost<A: Algorithm + Clone>(
    g0: &GraphSnapshot,
    alg: A,
    opts: EngineOptions,
    batch: &MutationBatch,
) -> (f64, u64, usize) {
    let mut engine = StreamingEngine::new(g0.clone(), alg, opts);
    engine.run_initial();
    let stored = engine.stored_aggregations();
    engine.stats().take_snapshot();
    let t = time(|| engine.apply_batch(batch).unwrap());
    let work = engine.stats().take_snapshot();
    (t.secs(), work.edge_computations, stored)
}

/// Vertical pruning: tracked entries and refinement cost with pruning on
/// vs off.
pub fn vertical_pruning(spec: GraphSpec, batch_size: usize) -> Table {
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[batch_size])
        .into_iter()
        .next()
        .expect("stream capacity");
    let mut t = Table::new(
        "Ablation: vertical pruning (PR)",
        vec!["pruning", "stored aggs", "refine time", "edge comps"],
    );
    for (label, on) in [("on", true), ("off", false)] {
        let opts = EngineOptions::with_iterations(ITERS).vertical(on);
        let alg = PageRank::with_tolerance(super::suite::BENCH_TOLERANCE);
        let (secs, edges, stored) = refine_cost(&g0, alg, opts, &batch);
        t.row(vec![
            label.to_string(),
            fmt_count(stored as u64),
            fmt_secs(secs),
            fmt_count(edges),
        ]);
    }
    t
}

/// Horizontal cut-off sweep: dependency-refined iterations vs hybrid
/// recomputation.
pub fn horizontal_cutoff(spec: GraphSpec, batch_size: usize) -> Table {
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let n = g0.num_vertices();
    let batch = draw_batches(&mut stream, &g0, &[batch_size])
        .into_iter()
        .next()
        .expect("stream capacity");
    let mut t = Table::new(
        "Ablation: horizontal cut-off (LP, 10 iterations total)",
        vec!["cut-off k", "stored aggs", "refine time", "edge comps"],
    );
    for k in [2usize, 4, 6, 8, 10] {
        let opts = EngineOptions::with_iterations(ITERS).cutoff(k);
        let mut alg = LabelPropagation::with_synthetic_seeds(4, n, 10);
        alg.tolerance = super::suite::BENCH_TOLERANCE;
        let (secs, edges, stored) = refine_cost(&g0, alg, opts, &batch);
        t.row(vec![
            format!("{k}"),
            fmt_count(stored as u64),
            fmt_secs(secs),
            fmt_count(edges),
        ]);
    }
    t
}

/// Fused `propagateDelta` vs explicit retract+propagate.
pub fn fused_delta(spec: GraphSpec, batch_size: usize) -> Table {
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[batch_size])
        .into_iter()
        .next()
        .expect("stream capacity");
    let mut t = Table::new(
        "Ablation: fused delta vs retract+propagate (PR)",
        vec!["mode", "refine time", "edge comps"],
    );
    for (label, fused) in [
        ("fused (GraphBolt)", true),
        ("retract+propagate (RP)", false),
    ] {
        let opts = EngineOptions::with_iterations(ITERS).fused(fused);
        let alg = PageRank::with_tolerance(super::suite::BENCH_TOLERANCE);
        let (secs, edges, _) = refine_cost(&g0, alg, opts, &batch);
        t.row(vec![label.to_string(), fmt_secs(secs), fmt_count(edges)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_pruning_reduces_storage() {
        let t = vertical_pruning(GraphSpec::at_scale(8), 10);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cutoff_sweep_renders_all_points() {
        let t = horizontal_cutoff(GraphSpec::at_scale(7), 10);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn fused_does_fewer_edge_computations() {
        let t = fused_delta(GraphSpec::at_scale(8), 10);
        assert_eq!(t.len(), 2);
    }
}

/// Non-decomposable `min` strategies: re-evaluation (default) vs the
/// §5.4 ordered-map extension — faster deletions, more storage.
pub fn min_strategies(spec: GraphSpec, batch_size: usize) -> Table {
    use graphbolt_algorithms::{ShortestPaths, ShortestPathsMultiset};
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[batch_size])
        .into_iter()
        .next()
        .expect("stream capacity");
    let source = (0..g0.num_vertices() as u32)
        .max_by_key(|&v| g0.out_degree(v))
        .unwrap_or(0);
    let mut t = Table::new(
        "Ablation: min aggregation — re-evaluation vs ordered map (SSSP)",
        vec!["strategy", "refine time", "edge comps", "store bytes"],
    );
    {
        let mut engine = StreamingEngine::new(
            g0.clone(),
            ShortestPaths::new(source),
            EngineOptions::with_iterations(ITERS),
        );
        engine.run_initial();
        engine.stats().take_snapshot();
        let secs = time(|| engine.apply_batch(&batch).unwrap()).secs();
        let work = engine.stats().take_snapshot();
        t.row(vec![
            "re-evaluation".to_string(),
            fmt_secs(secs),
            fmt_count(work.edge_computations),
            fmt_count(engine.dependency_memory_bytes() as u64),
        ]);
    }
    {
        let mut engine = StreamingEngine::new(
            g0,
            ShortestPathsMultiset::new(source),
            EngineOptions::with_iterations(ITERS),
        );
        engine.run_initial();
        engine.stats().take_snapshot();
        let secs = time(|| engine.apply_batch(&batch).unwrap()).secs();
        let work = engine.stats().take_snapshot();
        t.row(vec![
            "ordered map (§5.4)".to_string(),
            fmt_secs(secs),
            fmt_count(work.edge_computations),
            fmt_count(engine.dependency_memory_bytes() as u64),
        ]);
    }
    t
}

#[cfg(test)]
mod min_tests {
    use super::*;

    #[test]
    fn min_strategy_ablation_renders() {
        let t = min_strategies(GraphSpec::at_scale(8), 10);
        assert_eq!(t.len(), 2);
    }
}
