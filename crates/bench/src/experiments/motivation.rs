//! The motivation experiments: Table 1 (naive incremental reuse drifts),
//! Figure 2 (toy example of incorrect reuse), Figure 4 (value
//! stabilization across iterations).

use graphbolt_algorithms::LabelPropagation;
use graphbolt_core::{run_bsp, run_bsp_from, EngineOptions, EngineStats, ExecutionMode};
use graphbolt_graph::{Edge, GraphBuilder, WorkloadBias};

use super::common::bench_options;
use super::suite::draw_batches;
use crate::report::{fmt_count, Table};
use crate::workloads::{standard_stream, GraphSpec};

/// Max relative error between two label distributions.
fn rel_error(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / y.abs().max(1e-9))
        .fold(0.0, f64::max)
}

/// Table 1: streams 10 batches of mutations; after each, compares the
/// *naive incremental* result (`S*(Gᵀ, R_G)` — continue from stale
/// values, violating BSP semantics) against the exact from-scratch
/// result, counting vertices above 10% / 1% relative error.
pub fn table1(spec: GraphSpec, batches: usize, batch_size: usize) -> Table {
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let mut g = stream.initial_snapshot();
    let n = g.num_vertices();
    let lp = LabelPropagation::with_synthetic_seeds(4, n, 10);
    let opts = bench_options();

    // Converged state on the initial snapshot: both trajectories start
    // here.
    let mut naive_vals = run_bsp(&lp, &g, &opts, ExecutionMode::Full, &EngineStats::new()).vals;

    let mut t = Table::new(
        format!(
            "Table 1: vertices with incorrect results under naive incremental reuse \
             (LP, {batches} batches x {batch_size} mutations)"
        ),
        vec!["batch", ">10% error", ">1% error"],
    );
    let sizes = vec![batch_size; batches];
    let batch_list = draw_batches(&mut stream, &g, &sizes);
    for (bi, batch) in batch_list.iter().enumerate() {
        g = g.apply(batch).unwrap();
        // Naive: keep computing from the previous (stale) results.
        naive_vals = run_bsp_from(
            &lp,
            &g,
            naive_vals,
            &opts,
            ExecutionMode::Full,
            &EngineStats::new(),
        )
        .vals;
        // Exact: from-scratch synchronous execution on the new snapshot.
        let exact = run_bsp(&lp, &g, &opts, ExecutionMode::Full, &EngineStats::new()).vals;
        let mut over10 = 0u64;
        let mut over1 = 0u64;
        for v in 0..g.num_vertices() {
            let err = rel_error(&naive_vals[v], &exact[v]);
            if err > 0.10 {
                over10 += 1;
            }
            if err > 0.01 {
                over1 += 1;
            }
        }
        t.row(vec![
            format!("B{}", bi + 1),
            fmt_count(over10),
            fmt_count(over1),
        ]);
    }
    t
}

/// Figure 2: a 5-vertex toy graph where reusing results computed on `G`
/// for `Gᵀ` converges to values different from a fresh synchronous run.
/// (The paper's figure is an image; this reconstruction uses the same
/// vertex count and algorithm and demonstrates the same inequality
/// `S*(Gᵀ, R_G) ≠ S*(Gᵀ, I)`.)
pub fn fig2() -> Table {
    let g = GraphBuilder::new(5)
        .symmetric(true)
        .add_edge(0, 1, 0.9)
        .add_edge(1, 2, 0.4)
        .add_edge(2, 3, 0.7)
        .add_edge(3, 4, 0.6)
        .build();
    // Gᵀ: rewire the middle of the chain.
    let mut batch = graphbolt_graph::MutationBatch::new();
    batch
        .add(Edge::new(0, 3, 0.8))
        .add(Edge::new(3, 0, 0.8))
        .delete(Edge::new(2, 3, 0.7))
        .delete(Edge::new(3, 2, 0.7));
    let gt = g.apply(&batch).unwrap();

    let lp = LabelPropagation::new(2, vec![Some(0), None, None, None, Some(1)]);
    // Fixed 4 iterations: with clamped seeds LP has a unique fixpoint, so
    // the BSP violation is visible mid-trajectory (the paper's runs use a
    // fixed iteration budget for the same reason).
    let opts = EngineOptions::with_iterations(4);
    let stats = EngineStats::new();
    let on_g = run_bsp(&lp, &g, &opts, ExecutionMode::Full, &stats).vals;
    let on_gt = run_bsp(&lp, &gt, &opts, ExecutionMode::Full, &stats).vals;
    let naive = run_bsp_from(&lp, &gt, on_g.clone(), &opts, ExecutionMode::Full, &stats).vals;

    let mut t = Table::new(
        "Figure 2: Label Propagation values (probability of label 0)",
        vec!["run", "v0", "v1", "v2", "v3", "v4"],
    );
    let fmt = |vals: &[Vec<f64>]| -> Vec<String> {
        vals.iter().map(|d| format!("{:.3}", d[0])).collect()
    };
    let mut row = |name: &str, vals: &[Vec<f64>]| {
        let mut cells = vec![name.to_string()];
        cells.extend(fmt(vals));
        t.row(cells);
    };
    row("S*(G, I)", &on_g);
    row("S*(GT, I)  (correct)", &on_gt);
    row("S*(GT, R_G) (naive)", &naive);
    t
}

/// Figure 4: per-iteration counts of vertices whose aggregation is still
/// changing under the engine's selective scheduling — the stabilization
/// that makes pruning and incremental reuse effective. Derived from the
/// dependency store: with vertical pruning, a vertex's history length is
/// exactly the last iteration at which its aggregation changed.
pub fn fig4(spec: GraphSpec, iterations: usize) -> Table {
    use graphbolt_core::StreamingEngine;
    let stream = standard_stream(spec, WorkloadBias::Uniform);
    let g = stream.initial_snapshot();
    let n = g.num_vertices();
    let mut lp = LabelPropagation::with_synthetic_seeds(4, n, 10);
    // Stabilization under the benchmark scheduling threshold.
    lp.tolerance = super::suite::BENCH_TOLERANCE;
    let mut engine = StreamingEngine::new(g, lp, EngineOptions::with_iterations(iterations));
    engine.run_initial();

    let mut t = Table::new(
        "Figure 4: vertices whose aggregation is still changing, per iteration (LP)",
        vec!["iteration", "changing", "% of vertices"],
    );
    for i in 1..=iterations {
        let changing = (0..n)
            .filter(|&v| engine.store().stored_len(v) >= i)
            .count();
        t.row(vec![
            format!("{i}"),
            fmt_count(changing as u64),
            format!("{:.1}%", 100.0 * changing as f64 / n as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shows_naive_reuse_is_wrong() {
        let t = fig2();
        assert_eq!(t.len(), 3);
        let text = t.render();
        // The correct and naive rows must differ somewhere.
        let lines: Vec<&str> = text.lines().collect();
        let correct = lines.iter().find(|l| l.contains("correct")).unwrap();
        let naive = lines.iter().find(|l| l.contains("naive")).unwrap();
        let strip = |s: &str| s.split_whitespace().skip(3).collect::<Vec<_>>().join(" ");
        assert_ne!(
            strip(correct),
            strip(naive),
            "naive reuse should diverge:\n{text}"
        );
    }

    #[test]
    fn table1_accumulates_error() {
        let t = table1(GraphSpec::at_scale(8), 3, 20);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig4_shows_stabilization() {
        let t = fig4(GraphSpec::at_scale(8), 10);
        assert_eq!(t.len(), 10);
    }
}
