//! Formatting of the perf matrix into the paper's tables and figures
//! (Table 5, Figure 6, Table 6, Table 7) plus the batch-size sweep
//! (Figure 7) and Hi/Lo workloads (Table 8).

use graphbolt_engine::parallel;
use graphbolt_graph::WorkloadBias;

use super::perf::{run_perf, PerfMatrix};
use super::suite::{draw_batches, suite};
use crate::report::{fmt_count, fmt_secs, fmt_speedup, Table};
use crate::workloads::{standard_stream, GraphSpec};

/// Table 5: execution times for Ligra / GB-Reset / GraphBolt across
/// batch sizes, with speedup rows.
pub fn table5(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    let m = run_perf(spec, batch_sizes, WorkloadBias::Uniform);
    render_times(
        &m,
        "Table 5: execution times (Ligra vs GB-Reset vs GraphBolt)",
    )
}

pub(crate) fn render_times(m: &PerfMatrix, title: &str) -> Table {
    let mut header = vec!["algorithm".to_string(), "strategy".to_string()];
    header.extend(m.batch_sizes.iter().map(|s| format!("{s} muts")));
    let mut t = Table::new(title, header);
    for (name, costs) in &m.results {
        let mut row = |strategy: &str, f: &dyn Fn(&super::perf::StrategyCosts) -> String| {
            let mut cells = vec![name.clone(), strategy.to_string()];
            cells.extend(costs.iter().map(f));
            t.row(cells);
        };
        row("Ligra", &|c| fmt_secs(c.ligra_secs));
        row("GB-Reset", &|c| fmt_secs(c.gb_reset_secs));
        row("GraphBolt", &|c| fmt_secs(c.graphbolt_secs));
        row("x Ligra", &|c| fmt_speedup(c.speedup_vs_ligra()));
        row("x GB-Reset", &|c| fmt_speedup(c.speedup_vs_gb_reset()));
    }
    t
}

/// Figure 6: ratio of edge computations GraphBolt / GB-Reset.
pub fn fig6(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    let m = run_perf(spec, batch_sizes, WorkloadBias::Uniform);
    let mut header = vec!["algorithm".to_string()];
    header.extend(m.batch_sizes.iter().map(|s| format!("{s} muts")));
    let mut t = Table::new(
        "Figure 6: edge computations, GraphBolt / GB-Reset (lower is better)",
        header,
    );
    for (name, costs) in &m.results {
        let mut cells = vec![name.clone()];
        cells.extend(costs.iter().map(|c| format!("{:.4}", c.edge_ratio())));
        t.row(cells);
    }
    t
}

/// Table 6: thread-count sweep (stand-in for the paper's 32- vs 96-core
/// machines) on a larger graph.
pub fn table6(spec: GraphSpec, threads: &[usize], batch_size: usize) -> Vec<Table> {
    threads
        .iter()
        .map(|&th| {
            let m =
                parallel::with_threads(th, || run_perf(spec, &[batch_size], WorkloadBias::Uniform));
            render_times(
                &m,
                &format!("Table 6: execution times with {th} thread(s), {batch_size} mutations"),
            )
        })
        .collect()
}

/// Table 7: absolute edge computations performed by GraphBolt and the
/// percentage relative to GB-Reset.
pub fn table7(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    let m = run_perf(spec, batch_sizes, WorkloadBias::Uniform);
    let mut header = vec!["algorithm".to_string()];
    header.extend(m.batch_sizes.iter().map(|s| format!("{s} muts")));
    let mut t = Table::new(
        "Table 7: GraphBolt edge computations (and % of GB-Reset)",
        header,
    );
    for (name, costs) in &m.results {
        let mut cells = vec![name.clone()];
        cells.extend(costs.iter().map(|c| {
            format!(
                "{} ({:.3}%)",
                fmt_count(c.graphbolt_edges),
                100.0 * c.edge_ratio()
            )
        }));
        t.row(cells);
    }
    t
}

/// Figure 7: batch-size sweep, GB-Reset vs GraphBolt execution time per
/// algorithm.
pub fn fig7(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    let m = run_perf(spec, batch_sizes, WorkloadBias::Uniform);
    let mut header = vec!["algorithm".to_string(), "strategy".to_string()];
    header.extend(m.batch_sizes.iter().map(|s| format!("{s}")));
    let mut t = Table::new("Figure 7: execution time vs mutation batch size", header);
    for (name, costs) in &m.results {
        let mut reset = vec![name.clone(), "GB-Reset".to_string()];
        reset.extend(costs.iter().map(|c| fmt_secs(c.gb_reset_secs)));
        t.row(reset);
        let mut gb = vec![name.clone(), "GraphBolt".to_string()];
        gb.extend(costs.iter().map(|c| fmt_secs(c.graphbolt_secs)));
        t.row(gb);
    }
    t
}

/// Table 8: GraphBolt under high- vs low-degree-targeted mutation
/// workloads.
pub fn table8(spec: GraphSpec, batch_size: usize) -> Table {
    let mut t = Table::new(
        format!(
            "Table 8: GraphBolt times, Lo vs Hi degree-targeted workloads ({batch_size} mutations)"
        ),
        vec!["algorithm", "Lo", "Hi", "Hi/Lo"],
    );
    let run_bias = |bias: WorkloadBias| -> Vec<(String, f64)> {
        let mut stream = standard_stream(spec, bias);
        let g0 = stream.initial_snapshot();
        let batches = draw_batches(&mut stream, &g0, &[batch_size]);
        let batch = batches.into_iter().next().expect("stream has capacity");
        suite(g0.num_vertices())
            .into_iter()
            .map(|(name, runner)| {
                let costs = runner(&g0, std::slice::from_ref(&batch));
                (name.to_string(), costs[0].graphbolt_secs)
            })
            .collect()
    };
    let lo = run_bias(WorkloadBias::LowDegree);
    let hi = run_bias(WorkloadBias::HighDegree);
    for ((name, lo_s), (_, hi_s)) in lo.into_iter().zip(hi) {
        t.row(vec![
            name,
            fmt_secs(lo_s),
            fmt_secs(hi_s),
            format!("{:.2}", hi_s / lo_s.max(1e-12)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_renders_all_algorithms() {
        let t = table5(GraphSpec::at_scale(7), &[10]);
        assert_eq!(t.len(), 6 * 5);
        assert!(t.render().contains("GraphBolt"));
    }

    #[test]
    fn fig6_and_table7_render() {
        assert_eq!(fig6(GraphSpec::at_scale(7), &[10]).len(), 6);
        assert!(table7(GraphSpec::at_scale(7), &[10]).render().contains('%'));
    }

    #[test]
    fn table8_compares_biases() {
        let t = table8(GraphSpec::at_scale(7), 10);
        assert_eq!(t.len(), 6);
    }
}
