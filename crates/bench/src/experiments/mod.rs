//! Per-table / per-figure experiment drivers (see DESIGN.md §5 for the
//! full index).

pub mod ablation;
pub mod common;
pub mod fig8;
pub mod fig9;
pub mod motivation;
pub mod scaling;
pub mod perf;
pub mod structure;
pub mod suite;
pub mod table9;
pub mod tables;
