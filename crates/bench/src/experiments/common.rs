//! Shared measurement machinery for the table/figure reproductions.
//!
//! Methodology (paper §5.1): each strategy faces the *same* pending batch
//! of edge mutations on the same pre-mutation snapshot:
//!
//! * **Ligra** — restart: a full synchronous run on the mutated snapshot
//!   with no selective scheduling,
//! * **GB-Reset** — restart with selective scheduling (delta
//!   propagation), the PageRankDelta-style baseline,
//! * **GraphBolt** — dependency-driven refinement of the tracked state.
//!
//! Initial (pre-mutation) execution time is excluded everywhere, as in
//! the paper: the comparison is the cost to produce results for the new
//! snapshot.

use graphbolt_core::{
    run_bsp, Algorithm, EngineOptions, EngineStats, ExecutionMode, StreamingEngine,
};
use graphbolt_graph::{GraphSnapshot, MutationBatch};

use crate::harness::time;

/// Wall-clock seconds and edge computations for the three strategies on
/// one `(snapshot, batch)` instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategyCosts {
    /// Ligra restart.
    pub ligra_secs: f64,
    /// Edge computations of the Ligra restart.
    pub ligra_edges: u64,
    /// GB-Reset restart.
    pub gb_reset_secs: f64,
    /// Edge computations of the GB-Reset restart.
    pub gb_reset_edges: u64,
    /// GraphBolt refinement.
    pub graphbolt_secs: f64,
    /// Edge computations of the refinement (incl. hybrid phase).
    pub graphbolt_edges: u64,
}

impl StrategyCosts {
    /// GraphBolt speedup over Ligra.
    pub fn speedup_vs_ligra(&self) -> f64 {
        self.ligra_secs / self.graphbolt_secs.max(1e-12)
    }

    /// GraphBolt speedup over GB-Reset.
    pub fn speedup_vs_gb_reset(&self) -> f64 {
        self.gb_reset_secs / self.graphbolt_secs.max(1e-12)
    }

    /// Fraction of GB-Reset's edge computations GraphBolt performed
    /// (Figure 6 / Table 7).
    pub fn edge_ratio(&self) -> f64 {
        self.graphbolt_edges as f64 / self.gb_reset_edges.max(1) as f64
    }
}

/// Measures all three strategies for one algorithm on one batch.
///
/// `engine` must already be initialized on the pre-mutation snapshot; it
/// is advanced past the batch as a side effect, so successive calls
/// measure successive batches.
pub fn measure_strategies<A: Algorithm + Clone>(
    engine: &mut StreamingEngine<A>,
    batch: &MutationBatch,
    opts: &EngineOptions,
) -> StrategyCosts {
    let alg = engine.algorithm().clone();
    let mutated = engine
        .graph()
        .apply(batch)
        .expect("benchmark batch must validate");

    let ligra_stats = EngineStats::new();
    let ligra = time(|| {
        run_bsp(&alg, &mutated, opts, ExecutionMode::Full, &ligra_stats);
    });

    let reset_stats = EngineStats::new();
    let reset = time(|| {
        run_bsp(
            &alg,
            &mutated,
            opts,
            ExecutionMode::Incremental,
            &reset_stats,
        );
    });

    // Read-and-reset: the first take discards work accumulated by the
    // initial run and earlier batches, the second reads exactly this
    // batch's work (the engine is quiescent between the two takes).
    engine.stats().take_snapshot();
    let report = engine
        .apply_batch(batch)
        .expect("benchmark batch must validate");
    let refine_work = engine.stats().take_snapshot();

    // Graph-structure adjustment is excluded, as in the paper: all three
    // strategies need the mutated snapshot (the restarts receive it for
    // free above), and the paper reports structure-adjustment time
    // separately from processing time (§4.1).
    let refine_secs = (report.duration - report.structure_duration).as_secs_f64();

    StrategyCosts {
        ligra_secs: ligra.secs(),
        ligra_edges: ligra_stats.edge_computations(),
        gb_reset_secs: reset.secs(),
        gb_reset_edges: reset_stats.edge_computations(),
        graphbolt_secs: refine_secs,
        graphbolt_edges: refine_work.edge_computations,
    }
}

/// Measures Triangle Counting, which bypasses the iterated engine: the
/// restart strategies recount from scratch (identical, per §5.2), while
/// GraphBolt adjusts locally.
pub fn measure_tc(
    tc: &mut graphbolt_algorithms::TriangleCounter,
    current: &GraphSnapshot,
    batch: &MutationBatch,
) -> StrategyCosts {
    let mutated = current.apply(batch).expect("benchmark batch must validate");
    let recount = time(|| graphbolt_algorithms::count_full(&mutated));
    let recount_edges = mutated.num_edges() as u64;

    let probes_before = tc.probes();
    let refine = time(|| tc.apply_batch(batch));
    debug_assert_eq!(tc.incidences(), recount.value);

    StrategyCosts {
        ligra_secs: recount.secs(),
        ligra_edges: recount_edges,
        gb_reset_secs: recount.secs(),
        gb_reset_edges: recount_edges,
        graphbolt_secs: refine.secs(),
        graphbolt_edges: tc.probes() - probes_before,
    }
}

/// The standard per-algorithm iteration count (paper: 10 everywhere but
/// TC).
pub const ITERS: usize = 10;

/// Builds engine options for the benchmark runs.
pub fn bench_options() -> EngineOptions {
    EngineOptions::with_iterations(ITERS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{standard_stream, GraphSpec};
    use graphbolt_algorithms::{PageRank, TriangleCounter};
    use graphbolt_graph::WorkloadBias;

    #[test]
    fn measure_strategies_produces_sane_costs() {
        let mut stream = standard_stream(GraphSpec::at_scale(8), WorkloadBias::Uniform);
        let g = stream.initial_snapshot();
        let batch = stream.next_batch(&g, 20).unwrap();
        let opts = bench_options();
        let mut engine = StreamingEngine::new(g, PageRank::default(), opts);
        engine.run_initial();
        let costs = measure_strategies(&mut engine, &batch, &opts);
        assert!(costs.ligra_edges > 0);
        assert!(costs.gb_reset_edges > 0);
        assert!(costs.graphbolt_edges > 0);
        assert!(costs.ligra_secs > 0.0);
        // The engine advanced.
        assert_eq!(engine.graph().version(), 1);
    }

    #[test]
    fn measure_tc_agrees_with_recount() {
        let mut stream = standard_stream(GraphSpec::at_scale(8), WorkloadBias::Uniform);
        let g = stream.initial_snapshot();
        let batch = stream.next_batch(&g, 20).unwrap();
        let mut tc = TriangleCounter::new(&g);
        let costs = measure_tc(&mut tc, &g, &batch);
        assert!(costs.ligra_edges > 0);
    }
}
