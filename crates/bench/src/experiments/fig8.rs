//! Figure 8: PageRank — GraphBolt vs GraphBolt-RP vs (mini) Differential
//! Dataflow, across batch sizes (8a) and over 100 single-edge mutations
//! (8b).

use graphbolt_algorithms::PageRank;
use graphbolt_core::StreamingEngine;
use graphbolt_graph::WorkloadBias;
use graphbolt_minidd::DdPageRank;

use super::common::bench_options;
use super::suite::draw_batches;
use crate::harness::{std_dev, time};
use crate::report::{fmt_secs, Table};
use crate::workloads::{standard_stream, GraphSpec};

/// Figure 8a: execution time per batch size for the three systems.
pub fn fig8a(spec: GraphSpec, batch_sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 8a: PR — Differential Dataflow vs GraphBolt-RP vs GraphBolt",
        vec!["batch", "DiffDataflow", "GraphBolt-RP", "GraphBolt"],
    );
    for &size in batch_sizes {
        let mut stream = standard_stream(spec, WorkloadBias::Uniform);
        let g0 = stream.initial_snapshot();
        let Some(batch) = draw_batches(&mut stream, &g0, &[size]).into_iter().next() else {
            continue;
        };

        // Mini differential dataflow.
        let mut dd = DdPageRank::new(&g0, super::common::ITERS);
        let dd_t = time(|| dd.apply_batch(&batch));

        // GraphBolt-RP: explicit retract + propagate (fused deltas off).
        let opts_rp = bench_options().fused(false);
        let mut rp = StreamingEngine::new(g0.clone(), PageRank::default(), opts_rp);
        rp.run_initial();
        let rp_t = time(|| rp.apply_batch(&batch).unwrap());

        // GraphBolt: fused propagateDelta.
        let opts = bench_options();
        let mut gb = StreamingEngine::new(g0.clone(), PageRank::default(), opts);
        gb.run_initial();
        let gb_t = time(|| gb.apply_batch(&batch).unwrap());

        t.row(vec![
            format!("{}", batch.len()),
            fmt_secs(dd_t.secs()),
            fmt_secs(rp_t.secs()),
            fmt_secs(gb_t.secs()),
        ]);
    }
    t
}

/// Figure 8b: per-mutation latency over `count` consecutive single-edge
/// mutations — the paper highlights DD's high variance here.
pub fn fig8b(spec: GraphSpec, count: usize) -> Table {
    let mut stream = standard_stream(spec, WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let mut g = g0.clone();
    let mut batches = Vec::new();
    while batches.len() < count {
        match stream.next_batch(&g, 1) {
            Some(b) => {
                g = g.apply(&b).unwrap();
                batches.push(b);
            }
            None => break,
        }
    }

    let mut dd = DdPageRank::new(&g0, super::common::ITERS);
    let dd_times: Vec<f64> = batches
        .iter()
        .map(|b| time(|| dd.apply_batch(b)).secs())
        .collect();

    let mut gb = StreamingEngine::new(g0, PageRank::default(), bench_options());
    gb.run_initial();
    let gb_times: Vec<f64> = batches
        .iter()
        .map(|b| time(|| gb.apply_batch(b).unwrap()).secs())
        .collect();

    let mut t = Table::new(
        format!(
            "Figure 8b: {} single-edge mutations — latency distribution",
            batches.len()
        ),
        vec!["system", "total", "mean", "std dev", "min", "max"],
    );
    for (name, times) in [("DiffDataflow", dd_times), ("GraphBolt", gb_times)] {
        let total: f64 = times.iter().sum();
        let mean = total / times.len().max(1) as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        t.row(vec![
            name.to_string(),
            fmt_secs(total),
            fmt_secs(mean),
            fmt_secs(std_dev(&times)),
            fmt_secs(min),
            fmt_secs(max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_measures_three_systems() {
        let t = fig8a(GraphSpec::at_scale(7), &[5]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("DiffDataflow"));
    }

    #[test]
    fn fig8b_reports_distribution() {
        let t = fig8b(GraphSpec::at_scale(7), 5);
        assert_eq!(t.len(), 2);
    }
}
