//! Table 9: memory overhead of dependency tracking relative to GB-Reset.
//!
//! GB-Reset's working state is the graph plus one value and one
//! aggregation per vertex; GraphBolt adds the dependency store (tracked
//! aggregation histories). The paper reports the increase after the first
//! iteration as a worst-case estimate; we report the post-run store size
//! (vertical pruning included), which is the steady-state overhead.

use graphbolt_algorithms::{
    BeliefPropagation, CoEm, CollaborativeFiltering, LabelPropagation, PageRank, TriangleCounter,
};
use graphbolt_core::{agg_total_bytes, Algorithm, StreamingEngine};
use graphbolt_graph::{GraphSnapshot, WorkloadBias};

use super::common::bench_options;
use crate::report::Table;
use crate::workloads::{standard_stream, GraphSpec};

fn overhead<A: Algorithm>(g: &GraphSnapshot, alg: A) -> f64 {
    let mut engine = StreamingEngine::new(g.clone(), alg, bench_options());
    engine.run_initial();
    let store_bytes = engine.dependency_memory_bytes() as f64;
    // GB-Reset working set: graph + per-vertex value and aggregation.
    let n = g.num_vertices();
    let sample_agg = engine.algorithm().identity();
    let per_vertex =
        std::mem::size_of::<A::Value>() + agg_total_bytes(engine.algorithm(), &sample_agg);
    let baseline = g.memory_bytes() as f64 + (n * per_vertex) as f64;
    100.0 * store_bytes / baseline
}

/// Renders Table 9 for the suite.
pub fn table9(spec: GraphSpec) -> Table {
    let stream = standard_stream(spec, WorkloadBias::Uniform);
    let g = stream.initial_snapshot();
    let n = g.num_vertices();
    let mut t = Table::new(
        "Table 9: dependency-memory increase of GraphBolt w.r.t. GB-Reset",
        vec!["algorithm", "overhead %"],
    );
    let mut push = |name: &str, pct: f64| {
        t.row(vec![name.to_string(), format!("{pct:.2}%")]);
    };
    push("PR", overhead(&g, PageRank::default()));
    push("BP", overhead(&g, BeliefPropagation::default()));
    push("CoEM", overhead(&g, CoEm::with_synthetic_seeds(n, 10)));
    push(
        "LP",
        overhead(&g, LabelPropagation::with_synthetic_seeds(4, n, 10)),
    );
    push("CF", overhead(&g, CollaborativeFiltering::default()));
    // TC: duplicated adjacency structure vs the graph itself.
    let tc = TriangleCounter::new(&g);
    push(
        "TC",
        100.0 * tc.memory_bytes() as f64 / g.memory_bytes() as f64,
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_reports_positive_overheads() {
        let t = table9(GraphSpec::at_scale(7));
        assert_eq!(t.len(), 6);
        let text = t.render();
        assert!(text.contains('%'));
    }

    #[test]
    fn vector_algorithms_cost_more_than_scalar() {
        let stream = standard_stream(GraphSpec::at_scale(8), WorkloadBias::Uniform);
        let g = stream.initial_snapshot();
        let pr = overhead(&g, PageRank::default());
        let cf = overhead(&g, CollaborativeFiltering::default());
        assert!(
            cf > pr,
            "CF ({cf:.1}%) should cost more than PR ({pr:.1}%) — Table 9's shape"
        );
    }
}
