//! Graph-structure sensitivity (§5.2's closing observation: *"the impact
//! of edge mutations varies based on the structure of the graph and also
//! the nature of graph algorithm"*): the same algorithm and batch size
//! measured across three structurally different inputs.
//!
//! Expected shape: incremental savings are largest where mutation impact
//! stays local (grids: huge diameter, slow waves truncated by the
//! iteration budget; skewed R-MAT: hubs attenuate) and smallest on
//! small-world graphs, whose rewired shortcuts spread every change across
//! the whole vertex set within a few hops.

use graphbolt_algorithms::LabelPropagation;
use graphbolt_core::{EngineOptions, EngineStats, ExecutionMode, StreamingEngine};
use graphbolt_graph::generators::{grid, rmat, watts_strogatz, RmatConfig};
use graphbolt_graph::{Edge, MutationStream, StreamConfig, WorkloadBias};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::common::{bench_options, ITERS};
use super::suite::{draw_batches, BENCH_TOLERANCE};
use crate::harness::time;
use crate::report::{fmt_secs, Table};
use crate::workloads::GraphSpec;

fn families(spec: GraphSpec) -> Vec<(&'static str, Vec<Edge>)> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = 1usize << spec.scale;
    let side = (n as f64).sqrt() as usize;
    vec![
        (
            "R-MAT (skewed)",
            rmat(&RmatConfig::new(spec.scale, spec.edge_factor), &mut rng),
        ),
        ("grid (mesh)", grid(side, side, true, spec.seed)),
        (
            "small-world",
            watts_strogatz(n, spec.edge_factor / 2, 0.1, true, &mut rng),
        ),
    ]
}

/// Renders the structure-sensitivity table (LP, one batch size).
pub fn structure(spec: GraphSpec, batch_size: usize) -> Table {
    let mut t = Table::new(
        format!("Structure sensitivity: LP, {batch_size} mutations across graph families"),
        vec![
            "family",
            "|V|",
            "|E|",
            "GB-Reset",
            "GraphBolt",
            "speedup",
            "edge ratio",
        ],
    );
    for (name, edges) in families(spec) {
        let cfg = StreamConfig {
            bias: WorkloadBias::Uniform,
            seed: spec.seed ^ 0x57,
            ..StreamConfig::default()
        };
        let mut stream = MutationStream::new(edges, cfg);
        let g0 = stream.initial_snapshot();
        let Some(batch) = draw_batches(&mut stream, &g0, &[batch_size])
            .into_iter()
            .next()
        else {
            continue;
        };
        let n = g0.num_vertices();
        let mut alg = LabelPropagation::with_synthetic_seeds(4, n, 10);
        alg.tolerance = BENCH_TOLERANCE;

        let g1 = g0.apply(&batch).expect("batch validates");
        let reset_stats = EngineStats::new();
        let reset = time(|| {
            graphbolt_core::run_bsp(
                &alg,
                &g1,
                &bench_options(),
                ExecutionMode::Incremental,
                &reset_stats,
            )
        });

        let mut engine = StreamingEngine::new(g0, alg, EngineOptions::with_iterations(ITERS));
        engine.run_initial();
        engine.stats().take_snapshot();
        let report = engine.apply_batch(&batch).expect("batch validates");
        let work = engine.stats().take_snapshot();
        let refine_secs = (report.duration - report.structure_duration).as_secs_f64();

        t.row(vec![
            name.to_string(),
            format!("{n}"),
            format!("{}", g1.num_edges()),
            fmt_secs(reset.secs()),
            fmt_secs(refine_secs),
            format!("{:.2}×", reset.secs() / refine_secs.max(1e-12)),
            format!(
                "{:.4}",
                work.edge_computations as f64 / reset_stats.edge_computations().max(1) as f64
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::GraphSnapshot;

    #[test]
    fn structure_table_covers_three_families() {
        let t = structure(GraphSpec::at_scale(8), 10);
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("R-MAT"));
        assert!(text.contains("grid"));
        assert!(text.contains("small-world"));
    }

    #[test]
    fn families_are_nonempty_and_distinct() {
        let fams = families(GraphSpec::at_scale(8));
        assert_eq!(fams.len(), 3);
        for (name, edges) in &fams {
            assert!(!edges.is_empty(), "{name} generated no edges");
        }
        let g0: GraphSnapshot = {
            let (_, e) = &fams[0];
            GraphSnapshot::from_edges(graphbolt_graph::generators::vertex_count(e), e)
        };
        assert!(g0.num_edges() > 0);
    }
}
