//! Thread-scaling sweep: the first multicore story (DESIGN.md §3.6).
//!
//! Runs the standard streaming PageRank workload — initial execution
//! plus a fixed batch schedule — once per requested worker-thread count
//! inside a scoped rayon pool, and reports wall-clock plus the tagging /
//! propagation / application phase breakdown captured from the
//! [`TraceEvent::RefinePhaseDone`] stream. Adaptive-controller activity
//! (direction picks, probes, mispredicts) is reported as deltas so the
//! rows also show what the online cost model did at each width.
//!
//! [`TraceEvent::RefinePhaseDone`]: graphbolt_core::telemetry::TraceEvent

use std::sync::Arc;
use std::time::Instant;

use graphbolt_core::telemetry::trace;
use graphbolt_core::telemetry::{RefinePhase, RingBufferSink, TraceEvent};
use graphbolt_core::StreamingEngine;
use graphbolt_engine::{edge_map, parallel, EdgeMapOptions, VertexSubset};
use graphbolt_graph::{GraphSnapshot, VertexId, WorkloadBias};

use crate::experiments::common::bench_options;
use crate::harness::time;
use crate::workloads::{standard_stream, GraphSpec};

/// Nanoseconds per refinement phase, summed over all tracked iterations
/// of all batches in one sweep configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseNanos {
    /// Impacted-set derivation.
    pub tag: u64,
    /// Union passes over impacted edges.
    pub propagate: u64,
    /// Committing refined aggregations and values.
    pub apply: u64,
}

impl PhaseNanos {
    /// Sum of the three phases.
    pub fn total(&self) -> u64 {
        self.tag + self.propagate + self.apply
    }
}

/// One row of the scaling sweep: everything measured at one thread count.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Worker threads the scoped pool was built with.
    pub threads: usize,
    /// Initial (pre-mutation) execution wall-clock seconds.
    pub initial_secs: f64,
    /// Total refinement wall-clock seconds across all batches.
    pub refine_secs: f64,
    /// Batches applied.
    pub batches: usize,
    /// Per-phase nanoseconds from the trace stream.
    pub phases: PhaseNanos,
    /// Adaptive `edge_map` throughput (M edges+frontier/s) on a 10%
    /// frontier of the final snapshot at this thread width.
    pub edge_map_medges_per_sec: f64,
    /// Adaptive sparse (push) picks during the row.
    pub sparse_picks: u64,
    /// Adaptive dense (pull) picks during the row.
    pub dense_picks: u64,
    /// Probe iterations spent re-measuring the predicted-slower path.
    pub probes: u64,
    /// Picks the post-observation cost model scored as the slower path.
    pub mispredicts: u64,
}

/// Runs the sweep: one [`ScalingRow`] per entry of `threads`.
///
/// Each configuration rebuilds the stream and engine from scratch so the
/// rows face identical work; the trace subscriber is installed only for
/// the duration of the sweep.
pub fn run_scaling(
    spec: GraphSpec,
    threads: &[usize],
    batches: usize,
    batch_size: usize,
) -> Vec<ScalingRow> {
    let mut rows = Vec::with_capacity(threads.len());
    for &t in threads {
        // Capacity covers iterations × 3 phases × batches with slack;
        // drops would silently under-report phase time.
        let sink = Arc::new(RingBufferSink::new(1 << 16));
        trace::set_subscriber(sink.clone());
        let before = graphbolt_engine::adaptive::global().snapshot();
        let (initial_secs, refine_secs, edge_map_medges_per_sec) = parallel::with_threads(t, || {
            let mut stream = standard_stream(spec, WorkloadBias::Uniform);
            let g = stream.initial_snapshot();
            let opts = bench_options();
            let mut engine =
                StreamingEngine::new(g, graphbolt_algorithms::PageRank::default(), opts);
            let initial = time(|| {
                engine.run_initial();
            });
            let mut refine_secs = 0.0;
            for _ in 0..batches {
                let Some(batch) = stream.next_batch(engine.graph(), batch_size) else {
                    break;
                };
                let report = engine.apply_batch(&batch).expect("bench batch validates");
                refine_secs += (report.duration - report.structure_duration).as_secs_f64();
            }
            // The BSP driver's aggregation steps use their own push/pull
            // traversals, so exercise the adaptive edge_map path
            // explicitly at this width — the controller columns below
            // reflect these picks.
            let throughput = edge_map_throughput(engine.graph());
            (initial.secs(), refine_secs, throughput)
        });
        let after = graphbolt_engine::adaptive::global().snapshot();
        trace::clear_subscriber();
        let mut phases = PhaseNanos::default();
        for event in sink.drain() {
            if let TraceEvent::RefinePhaseDone { phase, nanos, .. } = event {
                match phase {
                    RefinePhase::Tag => phases.tag += nanos,
                    RefinePhase::Propagate => phases.propagate += nanos,
                    RefinePhase::Apply => phases.apply += nanos,
                }
            }
        }
        assert_eq!(sink.dropped(), 0, "trace sink overflowed; raise capacity");
        rows.push(ScalingRow {
            threads: t,
            initial_secs,
            refine_secs,
            batches,
            phases,
            edge_map_medges_per_sec,
            sparse_picks: after.sparse_picks - before.sparse_picks,
            dense_picks: after.dense_picks - before.dense_picks,
            probes: after.probes - before.probes,
            mispredicts: after.mispredicts - before.mispredicts,
        });
    }
    rows
}

/// Adaptive `edge_map` rounds per scaling row (first rounds warm the
/// controller at the new width, the rest are measured).
const EDGE_MAP_ROUNDS: usize = 8;
const EDGE_MAP_WARMUPS: usize = 3;

/// Median adaptive-`edge_map` throughput on a deterministic 10% frontier
/// (every 10th vertex) of `g`, in M (edges + frontier members) / s.
fn edge_map_throughput(g: &GraphSnapshot) -> f64 {
    let n = g.num_vertices();
    let ids: Vec<VertexId> = (0..n as VertexId).step_by(10).collect();
    let frontier = VertexSubset::from_ids(n, ids);
    let touched = (frontier.len() + frontier.out_degree_sum(g)) as f64;
    let work = parallel::WorkCounter::new();
    let traverse = |work: &parallel::WorkCounter| {
        std::hint::black_box(edge_map(
            g,
            &frontier,
            |u, v, _w| (u ^ v) & 1 == 0,
            |_| true,
            EdgeMapOptions::adaptive(),
            work,
        ))
    };
    let mut samples = Vec::with_capacity(EDGE_MAP_ROUNDS);
    for round in 0..EDGE_MAP_WARMUPS + EDGE_MAP_ROUNDS {
        let t = Instant::now();
        traverse(&work);
        if round >= EDGE_MAP_WARMUPS {
            samples.push(t.elapsed().as_secs_f64());
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    touched / samples[samples.len() / 2] / 1e6
}

/// Renders the rows as the `BENCH_scaling.json` document.
pub fn to_json(spec: GraphSpec, batch_size: usize, rows: &[ScalingRow]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"threads\": {}, \"initial_secs\": {:.6}, ",
                    "\"refine_secs\": {:.6}, \"batches\": {}, ",
                    "\"tag_ms\": {:.4}, \"propagate_ms\": {:.4}, ",
                    "\"apply_ms\": {:.4}, \"edge_map_medges_per_sec\": {:.2}, ",
                    "\"sparse_picks\": {}, ",
                    "\"dense_picks\": {}, \"probes\": {}, \"mispredicts\": {}}}"
                ),
                r.threads,
                r.initial_secs,
                r.refine_secs,
                r.batches,
                r.phases.tag as f64 / 1e6,
                r.phases.propagate as f64 / 1e6,
                r.phases.apply as f64 / 1e6,
                r.edge_map_medges_per_sec,
                r.sparse_picks,
                r.dense_picks,
                r.probes,
                r.mispredicts,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n  \"bench\": \"scaling\",\n  \"algorithm\": \"pagerank\",\n",
            "  \"graph\": {{\"generator\": \"rmat\", \"scale\": {}}},\n",
            "  \"batch_size\": {},\n  \"host_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        spec.scale,
        batch_size,
        parallel::default_threads(),
        entries.join(",\n"),
    )
}

/// Renders the rows as a `repro` console table.
pub fn table(rows: &[ScalingRow]) -> crate::report::Table {
    let mut t = crate::report::Table::new(
        "Thread scaling — streaming PageRank (initial + refinement, per-phase)",
        vec![
            "threads",
            "initial",
            "refine",
            "tag ms",
            "propagate ms",
            "apply ms",
            "edge_map ME/s",
            "probes",
            "mispredicts",
        ],
    );
    for r in rows {
        t.row(vec![
            r.threads.to_string(),
            crate::report::fmt_secs(r.initial_secs),
            crate::report::fmt_secs(r.refine_secs),
            format!("{:.1}", r.phases.tag as f64 / 1e6),
            format!("{:.1}", r.phases.propagate as f64 / 1e6),
            format!("{:.1}", r.phases.apply as f64 / 1e6),
            format!("{:.1}", r.edge_map_medges_per_sec),
            r.probes.to_string(),
            r.mispredicts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_per_phase_rows() {
        let rows = run_scaling(GraphSpec::at_scale(8), &[1, 2], 2, 16);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.initial_secs > 0.0);
            assert!(row.batches == 2);
            // Refinement ran, so phase time was traced.
            assert!(row.phases.total() > 0, "no phase events captured");
            // The explicit edge_map workload drove the controller.
            assert!(row.edge_map_medges_per_sec > 0.0);
            assert!(row.sparse_picks + row.dense_picks > 0);
        }
        let json = to_json(GraphSpec::at_scale(8), 16, &rows);
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("propagate_ms"));
    }
}
