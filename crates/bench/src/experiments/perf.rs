//! The core performance matrix: every suite algorithm × batch size ×
//! strategy. Tables 5–7 and Figures 6–7 are formattings of this
//! measurement.

use graphbolt_graph::WorkloadBias;

use super::suite::{draw_batches, suite};
use crate::workloads::{standard_stream, GraphSpec};

pub use super::common::StrategyCosts;

/// Measurement matrix: per algorithm, one [`StrategyCosts`] per batch
/// size.
#[derive(Debug, Clone)]
pub struct PerfMatrix {
    /// Batch sizes actually measured (clamped to stream capacity).
    pub batch_sizes: Vec<usize>,
    /// `(algorithm name, costs per batch size)`.
    pub results: Vec<(String, Vec<StrategyCosts>)>,
}

/// Runs the full matrix. Every `(algorithm, batch size)` cell starts from
/// the same loaded snapshot and measures one pending batch of the given
/// size, per the paper's methodology.
pub fn run_perf(spec: GraphSpec, batch_sizes: &[usize], bias: WorkloadBias) -> PerfMatrix {
    let mut results: Vec<(String, Vec<StrategyCosts>)> = Vec::new();
    let mut measured_sizes = Vec::new();
    for (si, &size) in batch_sizes.iter().enumerate() {
        let mut stream = standard_stream(spec, bias);
        let g0 = stream.initial_snapshot();
        let batches = draw_batches(&mut stream, &g0, &[size]);
        let Some(batch) = batches.into_iter().next() else {
            continue;
        };
        measured_sizes.push(batch.len());
        let n = g0.num_vertices();
        for (ai, (name, runner)) in suite(n).into_iter().enumerate() {
            let costs = runner(&g0, std::slice::from_ref(&batch));
            if si == 0 {
                results.push((name.to_string(), Vec::new()));
            }
            debug_assert_eq!(results[ai].0, name);
            results[ai].1.push(costs[0]);
        }
    }
    PerfMatrix {
        batch_sizes: measured_sizes,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_matrix_covers_suite_and_sizes() {
        let m = run_perf(GraphSpec::at_scale(7), &[5, 20], WorkloadBias::Uniform);
        assert_eq!(m.results.len(), 6);
        for (name, costs) in &m.results {
            assert_eq!(costs.len(), m.batch_sizes.len(), "{name}");
        }
    }

    #[test]
    fn graphbolt_beats_restart_on_small_batches() {
        // The headline claim at miniature scale: a small batch refines
        // with far fewer edge computations than a restart for most of the
        // suite.
        let m = run_perf(GraphSpec::at_scale(10), &[10], WorkloadBias::Uniform);
        let wins = m
            .results
            .iter()
            .filter(|(_, c)| c[0].edge_ratio() < 0.9)
            .count();
        assert!(
            wins >= 4,
            "expected most algorithms to save edge work, got {wins}/6: {:?}",
            m.results
                .iter()
                .map(|(n, c)| (n.clone(), c[0].edge_ratio()))
                .collect::<Vec<_>>()
        );
    }
}
