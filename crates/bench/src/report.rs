//! Plain-text table rendering for the `repro` CLI, mirroring the paper's
//! table/figure layouts.

/// A simple left-headered text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a titled table with column headers.
    pub fn new(title: impl Into<String>, header: Vec<impl Into<String>>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<impl Into<String>>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a speedup multiplier.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}×")
}

/// Formats a large count with thousands separators.
pub fn fmt_count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha  1"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("X", vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_speedup(2.468), "2.47×");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }
}
