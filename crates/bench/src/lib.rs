//! Shared benchmark-harness utilities: workload construction, timing,
//! table rendering, and the per-experiment drivers used by both the
//! `repro` CLI and the criterion benches.

pub mod experiments;
pub mod harness;
pub mod report;
pub mod workloads;

pub use harness::{time, TimedResult};
pub use report::Table;
pub use workloads::{standard_graph, standard_stream, GraphSpec};
