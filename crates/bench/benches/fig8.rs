//! Criterion benchmark mirroring Figure 8: PageRank on GraphBolt vs
//! GraphBolt-RP vs the mini differential dataflow, single mutation epoch.

use criterion::{criterion_group, criterion_main, Criterion};

use graphbolt_algorithms::PageRank;
use graphbolt_bench::experiments::common::{bench_options, ITERS};
use graphbolt_bench::experiments::suite::{draw_batches, BENCH_TOLERANCE};
use graphbolt_bench::workloads::{standard_stream, GraphSpec};
use graphbolt_core::StreamingEngine;
use graphbolt_graph::WorkloadBias;
use graphbolt_minidd::DdPageRank;

const SCALE: u32 = 11;
const BATCH: usize = 16;

fn benches(c: &mut Criterion) {
    let mut stream = standard_stream(GraphSpec::at_scale(SCALE), WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[BATCH])
        .into_iter()
        .next()
        .expect("stream capacity");

    let mut group = c.benchmark_group("fig8/PR_one_epoch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("graphbolt", |b| {
        b.iter_batched(
            || {
                let mut e = StreamingEngine::new(
                    g0.clone(),
                    PageRank::with_tolerance(BENCH_TOLERANCE),
                    bench_options(),
                );
                e.run_initial();
                e
            },
            |mut e| {
                e.apply_batch(&batch).expect("batch validates");
                e
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("graphbolt_rp", |b| {
        b.iter_batched(
            || {
                let mut e = StreamingEngine::new(
                    g0.clone(),
                    PageRank::with_tolerance(BENCH_TOLERANCE),
                    bench_options().fused(false),
                );
                e.run_initial();
                e
            },
            |mut e| {
                e.apply_batch(&batch).expect("batch validates");
                e
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("differential_dataflow", |b| {
        b.iter_batched(
            || DdPageRank::new(&g0, ITERS),
            |mut dd| {
                dd.apply_batch(&batch);
                dd
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(fig8, benches);
criterion_main!(fig8);
