//! Criterion benchmark mirroring Figure 7: GraphBolt refinement cost as
//! the mutation batch size sweeps from a single edge upward (PageRank).
//! The expected shape: cost grows with batch size but stays below the
//! GB-Reset restart until batches approach the graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use graphbolt_algorithms::PageRank;
use graphbolt_bench::experiments::common::bench_options;
use graphbolt_bench::experiments::suite::{draw_batches, BENCH_TOLERANCE};
use graphbolt_bench::workloads::{standard_stream, GraphSpec};
use graphbolt_core::StreamingEngine;
use graphbolt_graph::WorkloadBias;

const SCALE: u32 = 12;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/PR_refine_vs_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &size in &[1usize, 8, 64, 512] {
        let mut stream = standard_stream(GraphSpec::at_scale(SCALE), WorkloadBias::Uniform);
        let g0 = stream.initial_snapshot();
        let Some(batch) = draw_batches(&mut stream, &g0, &[size]).into_iter().next() else {
            continue;
        };
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &batch, |b, batch| {
            b.iter_batched(
                || {
                    let mut engine = StreamingEngine::new(
                        g0.clone(),
                        PageRank::with_tolerance(BENCH_TOLERANCE),
                        bench_options(),
                    );
                    engine.run_initial();
                    engine
                },
                |mut engine| {
                    engine.apply_batch(batch).expect("batch validates");
                    engine
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(fig7, benches);
criterion_main!(fig7);
