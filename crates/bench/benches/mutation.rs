//! Microbenchmarks of the graph substrate itself: snapshot construction
//! and batched structure adjustment (the paper quotes ~850 ms to adjust a
//! 1B-edge graph by 10K mutations, §4.1 — this measures our two-pass
//! scheme at miniature scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use graphbolt_bench::experiments::suite::draw_batches;
use graphbolt_bench::workloads::{standard_stream, GraphSpec};
use graphbolt_graph::{GraphSnapshot, WorkloadBias};

const SCALE: u32 = 12;

fn benches(c: &mut Criterion) {
    let spec = GraphSpec::at_scale(SCALE);
    let edges = spec.edges();
    let n = graphbolt_graph::generators::vertex_count(&edges);

    let mut group = c.benchmark_group("mutation/substrate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("build_snapshot", |b| {
        b.iter(|| GraphSnapshot::from_edges(n, &edges))
    });

    for &size in &[16usize, 256, 4096] {
        let mut stream = standard_stream(spec, WorkloadBias::Uniform);
        let g0 = stream.initial_snapshot();
        let Some(batch) = draw_batches(&mut stream, &g0, &[size]).into_iter().next() else {
            continue;
        };
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("apply_batch_rebuild", size),
            &batch,
            |b, batch| b.iter(|| g0.apply(batch).expect("batch validates")),
        );
        // The §4.1 STINGER-style alternative: in-place edge blocks.
        let dynamic = graphbolt_graph::DynamicGraph::from_snapshot(&g0);
        group.bench_with_input(
            BenchmarkId::new("apply_batch_in_place", size),
            &batch,
            |b, batch| {
                b.iter_batched(
                    || dynamic.clone(),
                    |mut d| {
                        d.apply(batch).expect("batch validates");
                        d
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(mutation, benches);
criterion_main!(mutation);
