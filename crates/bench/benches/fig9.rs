//! Criterion benchmark mirroring Figure 9: streaming SSSP on KickStarter
//! vs GraphBolt vs the mini differential dataflow, one mixed
//! addition/deletion epoch. Expected shape: KickStarter fastest (it
//! exploits monotonicity and asynchrony), GraphBolt next, mini-DD last.

use criterion::{criterion_group, criterion_main, Criterion};

use graphbolt_algorithms::ShortestPaths;
use graphbolt_bench::experiments::common::{bench_options, ITERS};
use graphbolt_bench::experiments::suite::draw_batches;
use graphbolt_bench::workloads::GraphSpec;
use graphbolt_core::StreamingEngine;
use graphbolt_graph::{MutationStream, StreamConfig, WorkloadBias};
use graphbolt_kickstarter::KickStarterSssp;
use graphbolt_minidd::DdSssp;

const SCALE: u32 = 11;
const BATCH: usize = 16;

fn benches(c: &mut Criterion) {
    let spec = GraphSpec::at_scale(SCALE);
    let cfg = StreamConfig {
        deletion_fraction: 0.5,
        bias: WorkloadBias::Uniform,
        ..StreamConfig::default()
    };
    let mut stream = MutationStream::new(spec.edges(), cfg);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[BATCH])
        .into_iter()
        .next()
        .expect("stream capacity");
    let g1 = g0.apply(&batch).expect("batch validates");
    let source = (0..g0.num_vertices() as u32)
        .max_by_key(|&v| g0.out_degree(v))
        .unwrap_or(0);

    let mut group = c.benchmark_group("fig9/SSSP_one_epoch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("kickstarter", |b| {
        b.iter_batched(
            || KickStarterSssp::new(&g0, source),
            |mut ks| {
                ks.apply_batch(&g1, &batch);
                ks
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("graphbolt", |b| {
        b.iter_batched(
            || {
                let mut e =
                    StreamingEngine::new(g0.clone(), ShortestPaths::new(source), bench_options());
                e.run_initial();
                e
            },
            |mut e| {
                e.apply_batch(&batch).expect("batch validates");
                e
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("differential_dataflow", |b| {
        b.iter_batched(
            || DdSssp::new(&g0, source, ITERS),
            |mut dd| {
                dd.apply_batch(&batch);
                dd
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(fig9, benches);
criterion_main!(fig9);
