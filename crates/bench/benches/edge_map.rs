//! Frontier-density sweep of `edge_map` on a skewed (R-MAT) graph.
//!
//! The incremental engine's refinement frontiers are usually tiny and
//! power-law shaped (a handful of hubs plus a tail of low-degree
//! vertices), so the sparse (push) path's load balance and per-edge
//! bookkeeping dominate end-to-end refinement cost. This bench sweeps
//! frontier density — 0.1%, 1%, 10%, and full — against the forced
//! sparse, forced dense, static (fixed Ligra heuristic), and auto
//! (adaptive online cost model, the engine default) paths.
//!
//! Besides the criterion groups, the bench writes a machine-readable
//! `BENCH_edge_map.json` at the workspace root (median-of-runs,
//! edges/second per configuration) so successive PRs can track the
//! trajectory without parsing criterion's output directory.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

use graphbolt_bench::workloads::{standard_graph, GraphSpec};
use graphbolt_engine::{edge_map, EdgeMapOptions, VertexSubset};
use graphbolt_graph::{GraphSnapshot, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SCALE: u32 = 14;
const FRONTIER_SEED: u64 = 0x5EED;

/// (label, member fraction) pairs swept below.
const DENSITIES: &[(&str, f64)] = &[
    ("0.1%", 0.001),
    ("1%", 0.01),
    ("10%", 0.1),
    ("full", 1.0),
];

const MODES: &[&str] = &["sparse", "dense", "static", "auto"];

fn mode_options(mode: &str) -> EdgeMapOptions {
    match mode {
        "sparse" => EdgeMapOptions::sparse(),
        "dense" => EdgeMapOptions::dense(),
        "static" => EdgeMapOptions::static_heuristic(),
        _ => EdgeMapOptions::adaptive(),
    }
}

/// Uniform vertex sample at the requested density (hubs and leaves drawn
/// alike, so per-member degree is as skewed as the graph itself).
fn make_frontier(n: usize, density: f64) -> VertexSubset {
    if density >= 1.0 {
        return VertexSubset::full(n);
    }
    let mut rng = SmallRng::seed_from_u64(FRONTIER_SEED);
    let ids: Vec<VertexId> = (0..n as VertexId)
        .filter(|_| rng.gen_bool(density))
        .collect();
    VertexSubset::from_ids(n, ids)
}

/// One traversal; returns a value derived from the result so the work
/// cannot be optimized away. The update function is deliberately cheap —
/// the bench measures frontier machinery, not algorithm math.
fn traverse(g: &GraphSnapshot, frontier: &VertexSubset, opts: EdgeMapOptions) -> u64 {
    let work = graphbolt_engine::parallel::WorkCounter::new();
    let next = edge_map(
        g,
        frontier,
        |u, v, _w| (u ^ v) & 1 == 0,
        |_| true,
        opts,
        &work,
    );
    work.get() + next.len() as u64
}

fn benches(c: &mut Criterion) {
    let g = standard_graph(GraphSpec::at_scale(SCALE));
    let mut group = c.benchmark_group("edge_map");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for &(label, density) in DENSITIES {
        let frontier = make_frontier(g.num_vertices(), density);
        let touched = (frontier.len() + frontier.out_degree_sum(&g)) as u64;
        group.throughput(Throughput::Elements(touched));
        for &mode in MODES {
            group.bench_with_input(
                BenchmarkId::new(mode, label),
                &frontier,
                |b, frontier| b.iter(|| traverse(&g, frontier, mode_options(mode))),
            );
        }
    }
    group.finish();
}

/// Median-of-`RUNS` wall-clock sweep, written as JSON next to the
/// workspace `Cargo.toml`. Kept separate from criterion so the numbers
/// are trivially diffable across PRs.
fn write_summary() {
    const RUNS: usize = 7;
    /// Extra adaptive warm-ups so the controller has measured both paths
    /// (cold start + probe) before the timed samples.
    const ADAPTIVE_WARMUPS: usize = 4;
    let g = standard_graph(GraphSpec::at_scale(SCALE));
    let threads = graphbolt_engine::parallel::default_threads();
    let mut entries = Vec::new();
    for &(label, density) in DENSITIES {
        let frontier = make_frontier(g.num_vertices(), density);
        let sparse_units = (frontier.len() + frontier.out_degree_sum(&g)) as u64;
        let dense_units = (g.num_vertices() + g.num_edges()) as u64;
        let touched = sparse_units;
        for &mode in MODES {
            let opts = mode_options(mode);
            let warmups = if mode == "auto" { ADAPTIVE_WARMUPS } else { 1 };
            for _ in 0..warmups {
                traverse(&g, &frontier, opts);
            }
            // The direction this row's configuration resolves to: forced
            // for sparse/dense, the Ligra cut-off for static, and the
            // controller's post-warm-up prediction for auto.
            let decision = match mode {
                "sparse" => "sparse",
                "dense" => "dense",
                "static" => {
                    if sparse_units > (g.num_edges() / 20) as u64 {
                        "dense"
                    } else {
                        "sparse"
                    }
                }
                _ => match graphbolt_engine::adaptive::global().predict(sparse_units, dense_units)
                {
                    Some(true) => "dense",
                    Some(false) => "sparse",
                    None => "static",
                },
            };
            let before = graphbolt_engine::adaptive::global().snapshot();
            let mut samples: Vec<f64> = (0..RUNS)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(traverse(&g, &frontier, opts));
                    t.elapsed().as_secs_f64()
                })
                .collect();
            let after = graphbolt_engine::adaptive::global().snapshot();
            samples.sort_by(|a, b| a.total_cmp(b));
            let median = samples[RUNS / 2];
            entries.push(format!(
                concat!(
                    "    {{\"density\": \"{}\", \"mode\": \"{}\", ",
                    "\"frontier_vertices\": {}, \"edges_plus_frontier\": {}, ",
                    "\"median_ms\": {:.4}, \"medges_per_sec\": {:.2}, ",
                    "\"threads\": {}, \"decision\": \"{}\", ",
                    "\"probes\": {}, \"mispredicts\": {}}}"
                ),
                label,
                mode,
                frontier.len(),
                touched,
                median * 1e3,
                touched as f64 / median / 1e6,
                threads,
                decision,
                after.probes - before.probes,
                after.mispredicts - before.mispredicts,
            ));
        }
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"edge_map\",\n  \"graph\": ",
            "{{\"generator\": \"rmat\", \"scale\": {}, \"vertices\": {}, \"edges\": {}}},\n",
            "  \"threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n"
        ),
        SCALE,
        g.num_vertices(),
        g.num_edges(),
        graphbolt_engine::parallel::default_threads(),
        entries.join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_edge_map.json");
    std::fs::write(&path, json).expect("write BENCH_edge_map.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(edge_map_benches, benches);

fn main() {
    // `cargo test` runs harness-less bench targets with `--test`; keep
    // that path fast by skipping both criterion and the summary sweep.
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        return;
    }
    edge_map_benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
