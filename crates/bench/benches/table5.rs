//! Criterion benchmark mirroring Table 5: one group per algorithm, one
//! benchmark per strategy (Ligra restart / GB-Reset restart / GraphBolt
//! refinement) at a fixed mutation batch size.
//!
//! Absolute numbers are machine-local; the paper-relevant signal is the
//! ordering GraphBolt < GB-Reset ≤ Ligra per group.

use criterion::{criterion_group, criterion_main, Criterion};

use graphbolt_algorithms::{LabelPropagation, PageRank, TriangleCounter};
use graphbolt_bench::experiments::common::bench_options;
use graphbolt_bench::experiments::suite::{draw_batches, BENCH_TOLERANCE};
use graphbolt_bench::workloads::{standard_stream, GraphSpec};
use graphbolt_core::{run_bsp, Algorithm, EngineStats, ExecutionMode, StreamingEngine};
use graphbolt_graph::{GraphSnapshot, MutationBatch, WorkloadBias};

const SCALE: u32 = 12;
const BATCH: usize = 64;

fn fixture() -> (GraphSnapshot, MutationBatch) {
    let mut stream = standard_stream(GraphSpec::at_scale(SCALE), WorkloadBias::Uniform);
    let g0 = stream.initial_snapshot();
    let batch = draw_batches(&mut stream, &g0, &[BATCH])
        .into_iter()
        .next()
        .expect("stream capacity");
    (g0, batch)
}

fn bench_algorithm<A: Algorithm + Clone + 'static>(c: &mut Criterion, name: &str, alg: A) {
    let (g0, batch) = fixture();
    let g1 = g0.apply(&batch).expect("batch validates");
    let opts = bench_options();

    let mut group = c.benchmark_group(format!("table5/{name}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("ligra_restart", |b| {
        b.iter(|| run_bsp(&alg, &g1, &opts, ExecutionMode::Full, &EngineStats::new()))
    });
    group.bench_function("gb_reset_restart", |b| {
        b.iter(|| {
            run_bsp(
                &alg,
                &g1,
                &opts,
                ExecutionMode::Incremental,
                &EngineStats::new(),
            )
        })
    });
    group.bench_function("graphbolt_refine", |b| {
        b.iter_batched(
            || {
                let mut engine = StreamingEngine::new(g0.clone(), alg.clone(), opts);
                engine.run_initial();
                engine
            },
            |mut engine| {
                engine.apply_batch(&batch).expect("batch validates");
                engine
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_tc(c: &mut Criterion) {
    let (g0, batch) = fixture();
    let g1 = g0.apply(&batch).expect("batch validates");
    let mut group = c.benchmark_group("table5/TC");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("recount", |b| {
        b.iter(|| graphbolt_algorithms::count_full(&g1))
    });
    group.bench_function("graphbolt_adjust", |b| {
        b.iter_batched(
            || TriangleCounter::new(&g0),
            |mut tc| {
                tc.apply_batch(&batch);
                tc
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let n = 1usize << SCALE;
    bench_algorithm(c, "PR", PageRank::with_tolerance(BENCH_TOLERANCE));
    let mut lp = LabelPropagation::with_synthetic_seeds(4, n, 10);
    lp.tolerance = BENCH_TOLERANCE;
    bench_algorithm(c, "LP", lp);
    bench_tc(c);
}

criterion_group!(table5, benches);
criterion_main!(table5);
