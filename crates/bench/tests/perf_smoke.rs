//! Perf-smoke regression guards (run by the CI `perf-smoke` job).
//!
//! Both tests are `#[ignore]` because they assert on wall-clock ratios:
//! meaningful in a release build on a quiet machine (`cargo test -p
//! graphbolt-bench --release --test perf_smoke -- --ignored
//! --test-threads 1`), noise in a debug parallel test run.

use std::time::Instant;

use graphbolt_bench::experiments::scaling::run_scaling;
use graphbolt_bench::workloads::{standard_graph, GraphSpec};
use graphbolt_engine::{edge_map, EdgeMapOptions, VertexSubset};
use graphbolt_graph::{GraphSnapshot, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SCALE: u32 = 14;
const DENSITIES: &[f64] = &[0.001, 0.01, 0.1, 1.0];

/// Auto must land within this factor of the better forced path…
const MAX_RATIO: f64 = 1.5;
/// …plus this much absolute slack, so sub-100µs rows aren't decided by
/// scheduler jitter.
const SLACK_SECS: f64 = 100e-6;

fn make_frontier(n: usize, density: f64) -> VertexSubset {
    if density >= 1.0 {
        return VertexSubset::full(n);
    }
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let ids: Vec<VertexId> = (0..n as VertexId)
        .filter(|_| rng.gen_bool(density))
        .collect();
    VertexSubset::from_ids(n, ids)
}

fn traverse(g: &GraphSnapshot, frontier: &VertexSubset, opts: EdgeMapOptions) -> u64 {
    let work = graphbolt_engine::parallel::WorkCounter::new();
    let next = edge_map(
        g,
        frontier,
        |u, v, _w| (u ^ v) & 1 == 0,
        |_| true,
        opts,
        &work,
    );
    work.get() + next.len() as u64
}

fn median_secs(g: &GraphSnapshot, frontier: &VertexSubset, opts: EdgeMapOptions) -> f64 {
    const RUNS: usize = 5;
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(traverse(g, frontier, opts));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[RUNS / 2]
}

/// The regression the adaptive controller exists to prevent: auto must
/// track the better of the forced paths at every frontier density
/// (the static heuristic was 4.6x off at 10% density on this graph).
#[test]
#[ignore = "wall-clock assertion; run in release via the perf-smoke job"]
fn auto_stays_within_factor_of_best_forced_path() {
    let g = standard_graph(GraphSpec::at_scale(SCALE));
    for &density in DENSITIES {
        let frontier = make_frontier(g.num_vertices(), density);
        // Warm the controller: cold start + probe + converge.
        for _ in 0..4 {
            traverse(&g, &frontier, EdgeMapOptions::adaptive());
        }
        let sparse = median_secs(&g, &frontier, EdgeMapOptions::sparse());
        let dense = median_secs(&g, &frontier, EdgeMapOptions::dense());
        let auto = median_secs(&g, &frontier, EdgeMapOptions::adaptive());
        let best = sparse.min(dense);
        assert!(
            auto <= best * MAX_RATIO + SLACK_SECS,
            "density {density}: auto {:.3}ms > {MAX_RATIO}x best {:.3}ms \
             (sparse {:.3}ms, dense {:.3}ms)",
            auto * 1e3,
            best * 1e3,
            sparse * 1e3,
            dense * 1e3,
        );
    }
}

/// The scaling sweep must produce one row per thread count with a
/// non-empty per-phase breakdown — the artifact CI uploads.
#[test]
#[ignore = "multi-second sweep; run in release via the perf-smoke job"]
fn thread_sweep_produces_per_phase_rows() {
    let threads = [1usize, 4];
    let rows = run_scaling(GraphSpec::at_scale(12), &threads, 2, 64);
    assert_eq!(rows.len(), threads.len());
    for (row, &t) in rows.iter().zip(&threads) {
        assert_eq!(row.threads, t);
        assert!(row.initial_secs > 0.0);
        assert!(
            row.phases.total() > 0,
            "t={t}: no tag/propagate/apply trace events captured"
        );
    }
}
