//! SSSP with a *decomposable* `min` via counted multisets — the extension
//! the paper sketches in §5.4: *"\[Differential Dataflow\] maintains an
//! ordered map of path values and counts for each vertex, which get
//! quickly updated with value changes. Such a data-structure can be
//! incorporated in GraphBolt to simulate faster incremental min (and
//! max) at the cost of increased storage per vertex."*
//!
//! The aggregation value is a sorted multiset of path-length candidates
//! (one per in-edge). `retract` removes one candidate instead of
//! re-evaluating the whole in-neighborhood, making `min` behave like a
//! decomposable aggregation: deletions cost `O(log d)` instead of
//! `O(d)`. The price is exactly what the paper predicts — the dependency
//! store now holds `O(|E|·iters)` entries instead of `O(|V|·iters)`.
//! The `ablation` experiment of the benchmark harness quantifies both
//! sides of the trade.

use std::collections::BTreeMap;

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// A sorted multiset of `f64` candidates with signed counts — the
/// "ordered map of path values and counts". Signed counts let one bag
/// double as a *diff* (the fused `⋃△` of an update is
/// `{old: −1, new: +1}`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MinBag {
    counts: BTreeMap<u64, i64>,
}

impl MinBag {
    /// The empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bag holding one candidate.
    pub fn singleton(value: f64) -> Self {
        let mut bag = Self::new();
        bag.insert(value, 1);
        bag
    }

    /// Adds `count` copies of `value` (negative counts retract).
    pub fn insert(&mut self, value: f64, count: i64) {
        if count == 0 {
            return;
        }
        let key = value.to_bits();
        debug_assert!(value >= 0.0, "distance candidates are non-negative");
        let slot = self.counts.entry(key).or_insert(0);
        *slot += count;
        if *slot == 0 {
            self.counts.remove(&key);
        }
    }

    /// Merges another bag (adding counts).
    pub fn merge(&mut self, other: &MinBag) {
        for (&k, &c) in &other.counts {
            let slot = self.counts.entry(k).or_insert(0);
            *slot += c;
            if *slot == 0 {
                self.counts.remove(&k);
            }
        }
    }

    /// Subtracts another bag (retracting its counts).
    pub fn unmerge(&mut self, other: &MinBag) {
        for (&k, &c) in &other.counts {
            let slot = self.counts.entry(k).or_insert(0);
            *slot -= c;
            if *slot == 0 {
                self.counts.remove(&k);
            }
        }
    }

    /// Smallest candidate with positive count (`+∞` when empty).
    ///
    /// Non-negative `f64` bit patterns order like the floats themselves,
    /// so the first key is the minimum.
    pub fn min(&self) -> f64 {
        for (&k, &c) in &self.counts {
            debug_assert!(c > 0, "consolidated bag has negative count");
            if c > 0 {
                return f64::from_bits(k);
            }
        }
        f64::INFINITY
    }

    /// Number of distinct candidates stored.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no candidate is stored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// SSSP whose `min` aggregation is decomposable thanks to [`MinBag`].
///
/// Semantically identical to
/// [`ShortestPaths`](crate::ShortestPaths) — only the incremental cost
/// profile differs.
#[derive(Debug, Clone)]
pub struct ShortestPathsMultiset {
    /// Source vertex.
    pub source: VertexId,
}

impl ShortestPathsMultiset {
    /// Weighted SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl Algorithm for ShortestPathsMultiset {
    type Value = f64;
    type Agg = MinBag;

    fn initial_value(&self, v: VertexId) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn identity(&self) -> MinBag {
        MinBag::new()
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &f64,
    ) -> MinBag {
        if cu.is_finite() {
            MinBag::singleton(cu + w)
        } else {
            // Unreached sources contribute nothing (keeping ∞ out of the
            // bag bounds its size by the reached in-degree).
            MinBag::new()
        }
    }

    fn combine(&self, agg: &mut MinBag, contrib: &MinBag) {
        agg.merge(contrib);
    }

    fn retract(&self, agg: &mut MinBag, contrib: &MinBag) {
        agg.unmerge(contrib);
    }

    fn compute(&self, v: VertexId, agg: &MinBag, _g: &GraphSnapshot) -> f64 {
        if v == self.source {
            0.0
        } else {
            agg.min()
        }
    }

    fn agg_heap_bytes(&self, agg: &MinBag) -> usize {
        // BTreeMap node overhead approximated at 2 words per entry.
        agg.len() * (std::mem::size_of::<(u64, i64)>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShortestPaths;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode, StreamingEngine};
    use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};

    #[test]
    fn bag_tracks_minimum_under_retraction() {
        let mut bag = MinBag::new();
        bag.insert(3.0, 1);
        bag.insert(1.5, 1);
        bag.insert(1.5, 1);
        assert_eq!(bag.min(), 1.5);
        bag.insert(1.5, -1);
        assert_eq!(bag.min(), 1.5, "one copy remains");
        bag.insert(1.5, -1);
        assert_eq!(bag.min(), 3.0);
        bag.insert(3.0, -1);
        assert!(bag.is_empty());
        assert_eq!(bag.min(), f64::INFINITY);
    }

    #[test]
    fn bag_merge_unmerge_round_trips() {
        let mut a = MinBag::singleton(2.0);
        a.insert(5.0, 1);
        let b = {
            let mut b = MinBag::singleton(1.0);
            b.insert(5.0, 1);
            b
        };
        let orig = a.clone();
        a.merge(&b);
        assert_eq!(a.min(), 1.0);
        a.unmerge(&b);
        assert_eq!(a, orig);
    }

    #[test]
    fn matches_reevaluation_sssp_on_stream() {
        use rand::{Rng, SeedableRng};
        for seed in 0..15 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(5..20usize);
            let mut b = GraphBuilder::new(n);
            for _ in 0..n * 2 {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, (rng.gen_range(1..20) as f64) * 0.5);
                }
            }
            let g = b.build();
            let opts = EngineOptions::with_iterations(n);

            let mut multiset = StreamingEngine::new(g.clone(), ShortestPathsMultiset::new(0), opts);
            multiset.run_initial();
            let mut reeval = StreamingEngine::new(g, ShortestPaths::new(0), opts);
            reeval.run_initial();

            for _ in 0..3 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v {
                        continue;
                    }
                    if multiset.graph().has_edge(u, v) {
                        batch.delete(Edge::new(u, v, multiset.graph().edge_weight(u, v).unwrap()));
                    } else {
                        batch.add(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.5));
                    }
                }
                let batch = batch.normalize_against(multiset.graph());
                if batch.is_empty() {
                    continue;
                }
                multiset.apply_batch(&batch).unwrap();
                reeval.apply_batch(&batch).unwrap();
                for v in 0..n {
                    let (a, b) = (multiset.values()[v], reeval.values()[v]);
                    assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                        "seed {seed} vertex {v}: multiset {a} vs re-eval {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn deletion_is_cheaper_than_reevaluation() {
        // A hub with many in-edges: retracting one candidate must not
        // rescan the whole in-neighborhood.
        let mut b = GraphBuilder::new(402);
        for i in 1..=400u32 {
            b = b.add_edge(0, i, 1.0);
            b = b.add_edge(i, 401, 1.0);
        }
        let g = b.build();
        let opts = EngineOptions::with_iterations(4);

        let mut multiset = StreamingEngine::new(g.clone(), ShortestPathsMultiset::new(0), opts);
        multiset.run_initial();
        let mut reeval = StreamingEngine::new(g, ShortestPaths::new(0), opts);
        reeval.run_initial();

        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(7, 401, 1.0));

        let m_before = multiset.stats().snapshot();
        multiset.apply_batch(&batch).unwrap();
        let m_work = (multiset.stats().snapshot() - m_before).edge_computations;

        let r_before = reeval.stats().snapshot();
        reeval.apply_batch(&batch).unwrap();
        let r_work = (reeval.stats().snapshot() - r_before).edge_computations;

        assert!(
            m_work * 10 < r_work,
            "multiset work {m_work} should be ≪ re-evaluation work {r_work}"
        );
        assert_eq!(multiset.values()[401], reeval.values()[401]);
    }

    #[test]
    fn storage_cost_is_higher_than_scalar_min() {
        let mut b = GraphBuilder::new(50);
        for i in 0..49u32 {
            b = b.add_edge(i, i + 1, 1.0);
            b = b.add_edge(0, i + 1, 10.0);
        }
        let g = b.build();
        let opts = EngineOptions::with_iterations(10);
        let mut multiset = StreamingEngine::new(g.clone(), ShortestPathsMultiset::new(0), opts);
        multiset.run_initial();
        let mut scalar = StreamingEngine::new(g, ShortestPaths::new(0), opts);
        scalar.run_initial();
        assert!(
            multiset.dependency_memory_bytes() > scalar.dependency_memory_bytes(),
            "the paper's predicted storage cost: {} vs {}",
            multiset.dependency_memory_bytes(),
            scalar.dependency_memory_bytes()
        );
    }

    #[test]
    fn reference_distances_are_correct() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 2.0)
            .add_edge(1, 2, 2.0)
            .add_edge(0, 2, 5.0)
            .add_edge(2, 3, 1.0)
            .build();
        let out = run_bsp(
            &ShortestPathsMultiset::new(0),
            &g,
            &EngineOptions::with_iterations(6),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals, vec![0.0, 2.0, 4.0, 5.0]);
    }
}
