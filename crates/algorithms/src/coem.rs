//! Co-Training Expectation Maximization (CoEM) — Table 4:
//! `⊕ = Σ c(u)·weight(u,v) / Σ weight(w,v)`.

use std::sync::Arc;

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// CoEM semi-supervised learning for named-entity recognition
/// (Nigam & Ghani): each vertex holds the probability of belonging to the
/// positive class; unlabeled vertices average their in-neighbors'
/// probabilities, weighted by edge weight and normalized by the total
/// incoming weight.
///
/// The normalization denominator `Σ weight(w, v)` lives on the
/// *destination* and is part of `∮`, so CoEM is
/// *target-structure-dependent*: mutation targets recompute their value
/// at every tracked iteration even when the raw sum is unchanged.
#[derive(Debug, Clone)]
pub struct CoEm {
    /// `labels[v] = Some(p)` clamps vertex `v` to probability `p`
    /// (1.0 = positive seed, 0.0 = negative seed).
    labels: Arc<Vec<Option<f64>>>,
    /// Selective-scheduling tolerance.
    pub tolerance: f64,
}

impl CoEm {
    /// Creates an instance from explicit seed labels.
    pub fn new(labels: Vec<Option<f64>>) -> Self {
        Self {
            labels: Arc::new(labels),
            tolerance: 1e-6,
        }
    }

    /// Synthetic seeding: every `stride`-th vertex is labeled, alternating
    /// positive / negative.
    pub fn with_synthetic_seeds(n: usize, stride: usize) -> Self {
        let labels = (0..n)
            .map(|v| {
                (v % stride == 0).then(|| if (v / stride).is_multiple_of(2) { 1.0 } else { 0.0 })
            })
            .collect();
        Self::new(labels)
    }

    fn seed_of(&self, v: VertexId) -> Option<f64> {
        self.labels.get(v as usize).copied().flatten()
    }
}

impl Algorithm for CoEm {
    type Value = f64;
    type Agg = f64;

    fn initial_value(&self, v: VertexId) -> f64 {
        self.seed_of(v).unwrap_or(0.5)
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &f64,
    ) -> f64 {
        cu * w
    }

    fn combine(&self, agg: &mut f64, contrib: &f64) {
        *agg += contrib;
    }

    fn retract(&self, agg: &mut f64, contrib: &f64) {
        *agg -= contrib;
    }

    fn delta(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        old: &f64,
        new: &f64,
    ) -> Option<f64> {
        Some((new - old) * w)
    }

    fn compute(&self, v: VertexId, agg: &f64, g: &GraphSnapshot) -> f64 {
        if let Some(p) = self.seed_of(v) {
            return p;
        }
        let denom = g.in_weight_sum(v);
        if denom <= 1e-300 {
            0.5
        } else {
            agg / denom
        }
    }

    fn changed(&self, old: &f64, new: &f64) -> bool {
        (old - new).abs() > self.tolerance
    }

    fn target_structure_dependent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_graph::GraphBuilder;

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let g = GraphBuilder::new(5)
            .symmetric(true)
            .add_edge(0, 1, 0.8)
            .add_edge(1, 2, 0.6)
            .add_edge(2, 3, 0.4)
            .add_edge(3, 4, 0.9)
            .build();
        let coem = CoEm::new(vec![Some(1.0), None, None, None, Some(0.0)]);
        let out = run_bsp(
            &coem,
            &g,
            &EngineOptions::with_iterations(15),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..5 {
            assert!(
                (0.0..=1.0).contains(&out.vals[v]),
                "p[{v}] = {}",
                out.vals[v]
            );
        }
        // Positive seed dominates its neighbor.
        assert!(out.vals[1] > out.vals[3]);
    }

    #[test]
    fn seeds_are_clamped() {
        let g = GraphBuilder::new(3)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let coem = CoEm::new(vec![Some(1.0), None, Some(0.0)]);
        let out = run_bsp(
            &coem,
            &g,
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals[0], 1.0);
        assert_eq!(out.vals[2], 0.0);
        assert!((out.vals[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalization_uses_incoming_weight() {
        // v2 gets 1.0·0.3 from a positive seed and 0.0·0.7 from a
        // negative one → 0.3 / (0.3 + 0.7) = 0.3.
        let g = GraphBuilder::new(3)
            .add_edge(0, 2, 0.3)
            .add_edge(1, 2, 0.7)
            .build();
        let coem = CoEm::new(vec![Some(1.0), Some(0.0), None]);
        let out = run_bsp(
            &coem,
            &g,
            &EngineOptions::with_iterations(3),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert!((out.vals[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unreached_vertices_stay_neutral() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).build();
        let coem = CoEm::new(vec![Some(1.0), None, None]);
        let out = run_bsp(
            &coem,
            &g,
            &EngineOptions::with_iterations(5),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals[2], 0.5);
    }
}
