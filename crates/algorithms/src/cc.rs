//! Connected Components (CC) — label-propagation with the `min`
//! aggregation.
//!
//! Like SSSP, the aggregation is **non-decomposable** (§3.3): deleting an
//! edge can disconnect a region, and a scalar minimum cannot "forget" a
//! retracted label, so the engine re-evaluates impacted aggregations by
//! pulling the full in-neighborhood. KickStarter-class systems treat CC
//! as their second flagship monotonic algorithm; here it doubles as a
//! second exerciser of GraphBolt's re-evaluation path.
//!
//! Components are defined over *directed reachability through min-label
//! exchange*: on a symmetrized graph this is exactly undirected connected
//! components once the iteration count reaches the diameter.

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// Min-label connected components.
#[derive(Debug, Clone, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the algorithm (no parameters: labels are vertex ids).
    pub fn new() -> Self {
        Self
    }

    /// Counts distinct component labels in a result slice.
    pub fn component_count(labels: &[f64]) -> usize {
        let mut seen: Vec<u32> = labels.iter().map(|&l| l as u32).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

impl Algorithm for ConnectedComponents {
    /// The label is carried as `f64` for uniformity with the scalar
    /// engine plumbing; it is always an exact small integer (vertex id).
    type Value = f64;
    type Agg = f64;

    fn initial_value(&self, v: VertexId) -> f64 {
        v as f64
    }

    fn identity(&self) -> f64 {
        f64::INFINITY
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        _w: Weight,
        cu: &f64,
    ) -> f64 {
        *cu
    }

    fn combine(&self, agg: &mut f64, contrib: &f64) {
        if *contrib < *agg {
            *agg = *contrib;
        }
    }

    fn decomposable(&self) -> bool {
        false
    }

    fn compute(&self, v: VertexId, agg: &f64, _g: &GraphSnapshot) -> f64 {
        // A vertex belongs at least to its own singleton component.
        agg.min(v as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode, StreamingEngine};
    use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};

    fn two_components() -> graphbolt_graph::GraphSnapshot {
        GraphBuilder::new(6)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 5, 1.0)
            .build()
    }

    #[test]
    fn labels_converge_to_component_minima() {
        let out = run_bsp(
            &ConnectedComponents::new(),
            &two_components(),
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals, vec![0.0, 0.0, 0.0, 3.0, 3.0, 3.0]);
        assert_eq!(ConnectedComponents::component_count(&out.vals), 2);
    }

    #[test]
    fn edge_addition_merges_components() {
        let mut engine = StreamingEngine::new(
            two_components(),
            ConnectedComponents::new(),
            EngineOptions::with_iterations(10),
        );
        engine.run_initial();
        let mut batch = MutationBatch::new();
        batch
            .add(Edge::unweighted(2, 3))
            .add(Edge::unweighted(3, 2));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(ConnectedComponents::component_count(engine.values()), 1);
        assert!(engine.values().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn edge_deletion_splits_components() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let mut engine = StreamingEngine::new(
            g,
            ConnectedComponents::new(),
            EngineOptions::with_iterations(10),
        );
        engine.run_initial();
        assert_eq!(ConnectedComponents::component_count(engine.values()), 1);
        let mut batch = MutationBatch::new();
        batch
            .delete(Edge::unweighted(1, 2))
            .delete(Edge::unweighted(2, 1));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(engine.values(), &[0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn refinement_matches_scratch_on_random_mutations() {
        use rand::{Rng, SeedableRng};
        for seed in 0..20 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(5..25usize);
            let mut b = GraphBuilder::new(n).symmetric(true);
            for _ in 0..n {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, 1.0);
                }
            }
            let g = b.build();
            let opts = EngineOptions::with_iterations(n);
            let mut engine = StreamingEngine::new(g, ConnectedComponents::new(), opts);
            engine.run_initial();
            // Flip a couple of symmetric pairs.
            let mut batch = MutationBatch::new();
            for _ in 0..3 {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u == v {
                    continue;
                }
                if engine.graph().has_edge(u, v) {
                    batch.delete(Edge::unweighted(u, v));
                    if engine.graph().has_edge(v, u) {
                        batch.delete(Edge::unweighted(v, u));
                    }
                } else if !engine.graph().has_edge(v, u) {
                    batch.add(Edge::unweighted(u, v));
                    batch.add(Edge::unweighted(v, u));
                }
            }
            let batch = batch.normalize_against(engine.graph());
            if batch.is_empty() {
                continue;
            }
            engine.apply_batch(&batch).unwrap();
            let scratch = run_bsp(
                &ConnectedComponents::new(),
                engine.graph(),
                &opts,
                ExecutionMode::Full,
                &EngineStats::new(),
            );
            assert_eq!(engine.values(), &scratch.vals[..], "seed {seed}");
        }
    }
}
