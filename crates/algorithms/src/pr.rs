//! PageRank (PR) — Table 4: `⊕ = Σ c(u) / out_degree(u)`.

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// Synchronous PageRank with damping, expressed in the GraphBolt
/// incremental model (Algorithm 1 / Algorithm 3 of the paper).
///
/// * aggregation: `g_i(v) = Σ_{(u,v)} c_{i-1}(u) / out_degree(u)`
///   (decomposable sum; `propagateDelta` is the fused difference of
///   Algorithm 3),
/// * `∮`: `c_i(v) = (1 - d) + d · g_i(v)`.
///
/// The contribution divides by the source's out-degree, so PageRank is
/// *source-structure-dependent*: refinement re-derives contributions of
/// every surviving out-edge of a vertex whose degree changed
/// (`oldpr/old_degree` vs `newpr/new_degree` in Algorithm 3).
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Damping factor (paper uses 0.85).
    pub damping: f64,
    /// Selective-scheduling tolerance: value changes below it do not
    /// propagate.
    pub tolerance: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-6,
        }
    }
}

impl PageRank {
    /// PageRank with a custom scheduling tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tolerance,
            ..Self::default()
        }
    }
}

impl Algorithm for PageRank {
    type Value = f64;
    type Agg = f64;

    fn initial_value(&self, _v: VertexId) -> f64 {
        1.0
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn contribution(
        &self,
        g: &GraphSnapshot,
        u: VertexId,
        _v: VertexId,
        _w: Weight,
        cu: &f64,
    ) -> f64 {
        cu / g.out_degree(u).max(1) as f64
    }

    fn combine(&self, agg: &mut f64, contrib: &f64) {
        *agg += contrib;
    }

    fn retract(&self, agg: &mut f64, contrib: &f64) {
        *agg -= contrib;
    }

    fn delta(
        &self,
        g: &GraphSnapshot,
        u: VertexId,
        _v: VertexId,
        _w: Weight,
        old: &f64,
        new: &f64,
    ) -> Option<f64> {
        Some((new - old) / g.out_degree(u).max(1) as f64)
    }

    fn delta_structural(
        &self,
        old_g: &GraphSnapshot,
        new_g: &GraphSnapshot,
        u: VertexId,
        _v: VertexId,
        _w: Weight,
        old: &f64,
        new: &f64,
    ) -> Option<f64> {
        // Algorithm 3's propagateDelta: newpr/new_degree − oldpr/old_degree.
        Some(new / new_g.out_degree(u).max(1) as f64 - old / old_g.out_degree(u).max(1) as f64)
    }

    fn compute(&self, _v: VertexId, agg: &f64, _g: &GraphSnapshot) -> f64 {
        (1.0 - self.damping) + self.damping * agg
    }

    fn changed(&self, old: &f64, new: &f64) -> bool {
        (old - new).abs() > self.tolerance
    }

    fn source_structure_dependent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_graph::GraphBuilder;

    fn triangle() -> GraphSnapshot {
        GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 0, 1.0)
            .build()
    }

    #[test]
    fn symmetric_cycle_keeps_uniform_ranks() {
        let g = triangle();
        let out = run_bsp(
            &PageRank::default(),
            &g,
            &EngineOptions::with_iterations(20),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..3 {
            assert!((out.vals[v] - 1.0).abs() < 1e-9, "rank {}", out.vals[v]);
        }
    }

    #[test]
    fn sink_heavy_vertex_ranks_higher() {
        // 0 → 2, 1 → 2: vertex 2 collects rank.
        let g = GraphBuilder::new(3)
            .add_edge(0, 2, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let out = run_bsp(
            &PageRank::default(),
            &g,
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert!(out.vals[2] > out.vals[0]);
        assert!(out.vals[2] > out.vals[1]);
    }

    #[test]
    fn delta_is_consistent_with_retract_combine() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let pr = PageRank::default();
        let (old, new) = (0.7, 1.3);
        let mut a = 2.0;
        pr.combine(&mut a, &pr.delta(&g, 0, 1, 1.0, &old, &new).unwrap());
        let mut b = 2.0;
        pr.retract(&mut b, &pr.contribution(&g, 0, 1, 1.0, &old));
        pr.combine(&mut b, &pr.contribution(&g, 0, 1, 1.0, &new));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn ranks_sum_is_conserved_without_sinks() {
        // Strongly connected: total rank ≈ n at fixpoint.
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(3, 0, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(2, 0, 1.0)
            .build();
        let out = run_bsp(
            &PageRank::default(),
            &g,
            &EngineOptions::with_iterations(60),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        let total: f64 = out.vals.iter().sum();
        assert!((total - 4.0).abs() < 1e-6, "total {total}");
    }
}
