//! Triangle Counting (TC) — Table 4:
//! `⊕ = Σ_{(u,v)} |in_neighbors(u) ∩ out_neighbors(v)|`.
//!
//! TC runs in a single iteration, so it bypasses the iterated-aggregation
//! engine: GraphBolt maintains the count incrementally by evaluating the
//! purely *local* impact of each edge mutation — a directed 3-cycle
//! `u → v → w → u` appears exactly when its last edge arrives and
//! disappears when any of its edges leaves (§5.2: "the impact of edge
//! mutations on TC is always local"). The counter mirrors the paper's
//! memory trade-off (Table 9): it keeps hash-set adjacency alongside the
//! snapshot (≈2× graph memory) to adjust counts without recomputing.

use std::collections::HashSet;

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

/// Count of directed-3-cycle incidences as the paper's aggregation
/// defines them: `Σ_{(u,v) ∈ E} |in(u) ∩ out(v)|`. Every directed
/// 3-cycle is counted three times (once per edge).
pub fn count_full(g: &GraphSnapshot) -> u64 {
    let mut total = 0u64;
    for u in 0..g.num_vertices() as VertexId {
        for v in g.out_neighbors(u) {
            total += sorted_intersection(g.in_neighbors(u), g.out_neighbors(*v));
        }
    }
    total
}

/// Per-vertex incidence counts: `counts[w]` is the number of `(u, v)`
/// edge pairs whose intersection contains `w` — i.e. how many directed
/// 3-cycles `w` *closes* as the third corner, counted once per cycle.
pub fn count_per_vertex(g: &GraphSnapshot) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_vertices()];
    for u in 0..g.num_vertices() as VertexId {
        for v in g.out_neighbors(u) {
            // w ∈ in(u) ∩ out(v): cycle u → v → w → u.
            let (a, b) = (g.in_neighbors(u), g.out_neighbors(*v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        counts[a[i] as usize] += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Directed local clustering coefficient of `v` on the symmetric closure
/// of its neighborhood: closed wedges over wedges, in `[0, 1]`
/// (`0` for degree < 2).
pub fn local_clustering(g: &GraphSnapshot, v: VertexId) -> f64 {
    // Distinct neighbors in either direction.
    let mut nbrs: Vec<VertexId> = g
        .out_neighbors(v)
        .iter()
        .chain(g.in_neighbors(v))
        .copied()
        .filter(|&u| u != v)
        .collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) || g.has_edge(b, a) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Size of the intersection of two sorted id slices.
fn sorted_intersection(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Incrementally maintained triangle counter.
///
/// # Examples
///
/// ```
/// use graphbolt_algorithms::TriangleCounter;
/// use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};
///
/// let g = GraphBuilder::new(3)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 1.0)
///     .build();
/// let mut tc = TriangleCounter::new(&g);
/// assert_eq!(tc.directed_cycles(), 0);
///
/// let mut batch = MutationBatch::new();
/// batch.add(Edge::unweighted(2, 0)); // closes the 0→1→2→0 cycle
/// tc.apply_batch(&batch);
/// assert_eq!(tc.directed_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TriangleCounter {
    out: Vec<HashSet<VertexId>>,
    inc: Vec<HashSet<VertexId>>,
    /// Incidence count (each cycle counted three times).
    incidences: u64,
    /// Membership probes performed — the TC analogue of edge
    /// computations (Figure 6 / Table 7).
    probes: u64,
}

impl TriangleCounter {
    /// Builds the counter from a snapshot, computing the initial count.
    pub fn new(g: &GraphSnapshot) -> Self {
        let n = g.num_vertices();
        let mut out = vec![HashSet::new(); n];
        let mut inc = vec![HashSet::new(); n];
        for u in 0..n as VertexId {
            for (v, _) in g.out_edges(u) {
                out[u as usize].insert(v);
                inc[v as usize].insert(u);
            }
        }
        let incidences = count_full(g);
        Self {
            out,
            inc,
            incidences,
            probes: 0,
        }
    }

    /// Current incidence count (`Σ_{(u,v)} |in(u) ∩ out(v)|`).
    pub fn incidences(&self) -> u64 {
        self.incidences
    }

    /// Number of distinct directed 3-cycles.
    pub fn directed_cycles(&self) -> u64 {
        debug_assert_eq!(self.incidences % 3, 0);
        self.incidences / 3
    }

    /// Membership probes performed so far by incremental maintenance.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Number of directed 3-cycles through the (present or prospective)
    /// edge `u → v`: `|{w : v → w ∧ w → u}|`, excluding `(u, v)` itself.
    fn cycles_through(&mut self, u: VertexId, v: VertexId) -> u64 {
        let (ui, vi) = (u as usize, v as usize);
        // Probe over the smaller side.
        let mut count = 0u64;
        if self.out[vi].len() <= self.inc[ui].len() {
            for &w in &self.out[vi] {
                self.probes += 1;
                if self.inc[ui].contains(&w) {
                    count += 1;
                }
            }
        } else {
            for &w in &self.inc[ui] {
                self.probes += 1;
                if self.out[vi].contains(&w) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Applies a mutation batch, adjusting the count incrementally. The
    /// batch must be consistent (additions absent, deletions present) —
    /// apply the same batch to the [`GraphSnapshot`] to keep both in
    /// sync.
    pub fn apply_batch(&mut self, batch: &MutationBatch) {
        // Grow the vertex space as needed.
        if let Some(max) = batch.max_vertex_id() {
            let need = max as usize + 1;
            if need > self.out.len() {
                self.out.resize_with(need, HashSet::new);
                self.inc.resize_with(need, HashSet::new);
            }
        }
        // Sequential edge-at-a-time semantics: a cycle is counted when its
        // last edge arrives and discounted when its first edge leaves, so
        // intra-batch combinations resolve exactly.
        for e in batch.deletions() {
            let removed = self.out[e.src as usize].remove(&e.dst);
            debug_assert!(removed, "deleting absent edge ({}, {})", e.src, e.dst);
            self.inc[e.dst as usize].remove(&e.src);
            // Each destroyed cycle loses 3 incidences.
            let cycles = self.cycles_through(e.src, e.dst);
            self.incidences -= 3 * cycles;
        }
        for e in batch.additions() {
            let cycles = self.cycles_through(e.src, e.dst);
            self.incidences += 3 * cycles;
            let inserted = self.out[e.src as usize].insert(e.dst);
            debug_assert!(inserted, "adding duplicate edge ({}, {})", e.src, e.dst);
            self.inc[e.dst as usize].insert(e.src);
        }
    }

    /// Estimated bytes of the duplicated adjacency structure — TC's
    /// dependency-memory overhead (Table 9).
    pub fn memory_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<VertexId>() * 2; // id + hash overhead (amortized)
        let entries: usize = self.out.iter().map(HashSet::len).sum::<usize>()
            + self.inc.iter().map(HashSet::len).sum::<usize>();
        let spine =
            (self.out.capacity() + self.inc.capacity()) * std::mem::size_of::<HashSet<VertexId>>();
        spine + entries * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    fn two_cycles() -> GraphSnapshot {
        // Cycles 0→1→2→0 and 1→2→3→1.
        GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 0, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(3, 1, 1.0)
            .build()
    }

    #[test]
    fn per_vertex_counts_sum_to_total() {
        let g = two_cycles();
        let counts = count_per_vertex(&g);
        // Each directed cycle contributes 3 incidences across its three
        // corners — the same total as count_full.
        assert_eq!(counts.iter().sum::<u64>(), count_full(&g));
        // Vertex 1 and 2 sit on both cycles, 0 and 3 on one each.
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn clustering_coefficient_of_clique_is_one() {
        let mut b = GraphBuilder::new(4).symmetric(true);
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                b = b.add_edge(i, j, 1.0);
            }
        }
        let g = b.build();
        for v in 0..4 {
            assert_eq!(local_clustering(&g, v), 1.0);
        }
    }

    #[test]
    fn clustering_coefficient_of_star_center_is_zero() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(0, 3, 1.0)
            .build();
        assert_eq!(local_clustering(&g, 0), 0.0);
        // Leaves have degree 1.
        assert_eq!(local_clustering(&g, 1), 0.0);
    }

    #[test]
    fn full_count_finds_directed_cycles() {
        let g = two_cycles();
        assert_eq!(count_full(&g), 6); // 2 cycles × 3 incidences
        let tc = TriangleCounter::new(&g);
        assert_eq!(tc.directed_cycles(), 2);
    }

    #[test]
    fn addition_closes_cycles() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let mut tc = TriangleCounter::new(&g);
        let mut batch = MutationBatch::new();
        batch.add(Edge::unweighted(2, 0));
        tc.apply_batch(&batch);
        let g2 = g.apply(&batch).unwrap();
        assert_eq!(tc.incidences(), count_full(&g2));
    }

    #[test]
    fn deletion_destroys_cycles() {
        let g = two_cycles();
        let mut tc = TriangleCounter::new(&g);
        let mut batch = MutationBatch::new();
        batch.delete(Edge::unweighted(1, 2)); // shared edge: kills both cycles
        tc.apply_batch(&batch);
        assert_eq!(tc.directed_cycles(), 0);
        let g2 = g.apply(&batch).unwrap();
        assert_eq!(tc.incidences(), count_full(&g2));
    }

    #[test]
    fn mixed_batch_matches_recount() {
        let g = two_cycles();
        let mut tc = TriangleCounter::new(&g);
        let mut batch = MutationBatch::new();
        batch
            .add(Edge::unweighted(0, 2))
            .add(Edge::unweighted(3, 0))
            .delete(Edge::unweighted(2, 0));
        tc.apply_batch(&batch);
        let g2 = g.apply(&batch).unwrap();
        assert_eq!(tc.incidences(), count_full(&g2));
    }

    #[test]
    fn sequential_batches_stay_in_sync() {
        let mut g = two_cycles();
        let mut tc = TriangleCounter::new(&g);
        let steps = [
            (Some(Edge::unweighted(0, 3)), None),
            (Some(Edge::unweighted(3, 2)), Some(Edge::unweighted(2, 3))),
            (None, Some(Edge::unweighted(0, 1))),
        ];
        for (add, del) in steps {
            let mut batch = MutationBatch::new();
            if let Some(e) = add {
                batch.add(e);
            }
            if let Some(e) = del {
                batch.delete(e);
            }
            tc.apply_batch(&batch);
            g = g.apply(&batch).unwrap();
            assert_eq!(tc.incidences(), count_full(&g));
        }
    }

    #[test]
    fn vertex_growth_in_batch() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let mut tc = TriangleCounter::new(&g);
        let mut batch = MutationBatch::new();
        batch
            .add(Edge::unweighted(1, 5))
            .add(Edge::unweighted(5, 0));
        tc.apply_batch(&batch);
        let g2 = g.apply(&batch).unwrap();
        assert_eq!(tc.incidences(), count_full(&g2));
        assert_eq!(tc.directed_cycles(), 1);
    }

    #[test]
    fn probes_are_counted() {
        let g = two_cycles();
        let mut tc = TriangleCounter::new(&g);
        assert_eq!(tc.probes(), 0);
        let mut batch = MutationBatch::new();
        batch.add(Edge::unweighted(0, 3));
        tc.apply_batch(&batch);
        assert!(tc.probes() > 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(30))]
        #[test]
        fn incremental_always_matches_recount(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4..15usize);
            let mut edges = Vec::new();
            for u in 0..n as VertexId {
                for v in 0..n as VertexId {
                    if u != v && rng.gen_bool(0.3) {
                        edges.push(Edge::unweighted(u, v));
                    }
                }
            }
            let mut g = GraphSnapshot::from_edges(n, &edges);
            let mut tc = TriangleCounter::new(&g);
            for _ in 0..4 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..5) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if g.has_edge(u, v) {
                        batch.delete(Edge::unweighted(u, v));
                    } else {
                        batch.add(Edge::unweighted(u, v));
                    }
                }
                let batch = batch.normalize_against(&g);
                if batch.is_empty() { continue; }
                tc.apply_batch(&batch);
                g = g.apply(&batch).unwrap();
                proptest::prop_assert_eq!(tc.incidences(), count_full(&g));
            }
        }
    }
}
