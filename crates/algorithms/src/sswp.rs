//! Single-Source Widest Paths (SSWP) — `max` of `min(bottleneck)`.
//!
//! The bottleneck (maximum-capacity) path problem: the width of a path is
//! its minimum edge weight; each vertex seeks the maximum width over
//! paths from the source. SSWP is KickStarter's third flagship monotonic
//! algorithm (alongside SSSP and WCC); here it exercises GraphBolt's
//! non-decomposable path with a `max` aggregation — the mirror image of
//! SSSP's `min` (§3.3: "min and max … non-decomposable").

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// Widest-path widths from a source vertex.
///
/// * aggregation: `g_i(v) = max_{(u,v)} min(c_{i-1}(u), w)` —
///   non-decomposable `max`, refined by re-evaluation,
/// * `∮`: the source is pinned to `+∞` width; unreached vertices hold 0.
#[derive(Debug, Clone)]
pub struct WidestPaths {
    /// Source vertex.
    pub source: VertexId,
}

impl WidestPaths {
    /// SSWP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl Algorithm for WidestPaths {
    type Value = f64;
    type Agg = f64;

    fn initial_value(&self, v: VertexId) -> f64 {
        if v == self.source {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &f64,
    ) -> f64 {
        cu.min(w)
    }

    fn combine(&self, agg: &mut f64, contrib: &f64) {
        if *contrib > *agg {
            *agg = *contrib;
        }
    }

    fn decomposable(&self) -> bool {
        false
    }

    fn compute(&self, v: VertexId, agg: &f64, _g: &GraphSnapshot) -> f64 {
        if v == self.source {
            f64::INFINITY
        } else {
            *agg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode, StreamingEngine};
    use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};

    fn sample() -> GraphSnapshot {
        // Two routes 0 → 3: wide-then-narrow (min 2) vs narrow-then-wide
        // (min 3).
        GraphBuilder::new(5)
            .add_edge(0, 1, 5.0)
            .add_edge(1, 3, 2.0)
            .add_edge(0, 2, 3.0)
            .add_edge(2, 3, 4.0)
            .add_edge(3, 4, 1.0)
            .build()
    }

    #[test]
    fn computes_bottleneck_widths() {
        let out = run_bsp(
            &WidestPaths::new(0),
            &sample(),
            &EngineOptions::with_iterations(8),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert!(out.vals[0].is_infinite());
        assert_eq!(out.vals[1], 5.0);
        assert_eq!(out.vals[2], 3.0);
        assert_eq!(out.vals[3], 3.0, "the narrow-then-wide route wins");
        assert_eq!(out.vals[4], 1.0);
    }

    #[test]
    fn unreached_vertices_have_zero_width() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 2.0).build();
        let out = run_bsp(
            &WidestPaths::new(0),
            &g,
            &EngineOptions::with_iterations(4),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals[2], 0.0);
    }

    #[test]
    fn deletion_narrows_via_reevaluation() {
        let mut engine = StreamingEngine::new(
            sample(),
            WidestPaths::new(0),
            EngineOptions::with_iterations(8),
        );
        engine.run_initial();
        assert_eq!(engine.values()[3], 3.0);
        // Removing the winning route's first hop drops 3's width to 2.
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(0, 2, 3.0));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(engine.values()[3], 2.0);
    }

    #[test]
    fn addition_widens() {
        let mut engine = StreamingEngine::new(
            sample(),
            WidestPaths::new(0),
            EngineOptions::with_iterations(8),
        );
        engine.run_initial();
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 3, 9.0));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(engine.values()[3], 9.0);
        assert_eq!(engine.values()[4], 1.0, "downstream bottleneck unchanged");
    }

    #[test]
    fn refinement_matches_scratch_on_random_streams() {
        use rand::{Rng, SeedableRng};
        for seed in 0..15 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(5..18usize);
            let mut b = GraphBuilder::new(n);
            for _ in 0..n * 2 {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    b = b.add_edge(u, v, (rng.gen_range(1..20) as f64) * 0.5);
                }
            }
            let g = b.build();
            let opts = EngineOptions::with_iterations(n);
            let mut engine = StreamingEngine::new(g, WidestPaths::new(0), opts);
            engine.run_initial();
            for _ in 0..3 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v {
                        continue;
                    }
                    if engine.graph().has_edge(u, v) {
                        batch.delete(Edge::new(u, v, engine.graph().edge_weight(u, v).unwrap()));
                    } else {
                        batch.add(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.5));
                    }
                }
                let batch = batch.normalize_against(engine.graph());
                if batch.is_empty() {
                    continue;
                }
                engine.apply_batch(&batch).unwrap();
                let scratch = run_bsp(
                    &WidestPaths::new(0),
                    engine.graph(),
                    &opts,
                    ExecutionMode::Full,
                    &EngineStats::new(),
                );
                for v in 0..n {
                    let (a, b) = (engine.values()[v], scratch.vals[v]);
                    assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                        "seed {seed} vertex {v}: {a} vs {b}"
                    );
                }
            }
        }
    }
}
