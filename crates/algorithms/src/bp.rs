//! Belief Propagation (BP) — Table 4:
//! `⊕ = ∀s: Π_{(u,v)} ( Σ_{s'} ϕ(u,s')·ψ(u,v,s',s)·c(u,s') )`.
//!
//! BP over a pairwise Markov random field with `S` states
//! (Kang et al., "Inference of Beliefs on Billion-Scale Graphs"). The
//! aggregation is a per-state *product* over in-edges — the paper's
//! example of a complex aggregation whose retraction is a division
//! (`atomicDivide` in Algorithm 2).
//!
//! # Log-space aggregation
//!
//! A raw product over thousands of in-edges overflows or underflows
//! `f64`. This implementation therefore keeps the aggregation in **log
//! space**: the per-state aggregation value is `Σ ln(contribution)`, so
//! `combine` is addition, `retract` is subtraction (exactly the paper's
//! multiply/divide, transported through `ln`), and `∮` applies a
//! numerically stable softmax normalization. Decomposability and the
//! commutative/associative requirements are preserved.
//!
//! Node potentials `ϕ` and edge potentials `ψ` are derived
//! deterministically from vertex/edge ids (the datasets in the paper
//! carry no potentials either; Kang et al. generate them), all bounded
//! within `[1 − ε, 1 + ε]` for coupling ε < 1, so every contribution is
//! strictly positive.

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

use crate::util::{hash_unit, linf};

/// Loopy belief propagation with `S` states, log-space aggregation.
#[derive(Debug, Clone)]
pub struct BeliefPropagation {
    /// Number of states `|S|`.
    pub num_states: usize,
    /// Selective-scheduling tolerance on the belief vector.
    pub tolerance: f64,
    /// Seed mixed into the potential hashes, giving independent random
    /// MRFs per seed.
    pub potential_seed: u64,
    /// Coupling strength ε: potentials are drawn from `[1 − ε, 1 + ε]`.
    /// Weak coupling (small ε) is the standard well-behaved regime for
    /// loopy BP (strongly coupled random MRFs do not converge).
    pub coupling: f64,
}

impl Default for BeliefPropagation {
    fn default() -> Self {
        Self {
            num_states: 3,
            tolerance: 1e-6,
            potential_seed: 0xBE11EF,
            coupling: 0.5,
        }
    }
}

impl BeliefPropagation {
    /// BP with a custom number of states.
    pub fn with_states(num_states: usize) -> Self {
        assert!(num_states >= 2);
        Self {
            num_states,
            ..Self::default()
        }
    }

    /// BP with a custom potential coupling strength `ε ∈ (0, 1)`.
    pub fn with_coupling(coupling: f64) -> Self {
        assert!(coupling > 0.0 && coupling < 1.0);
        Self {
            coupling,
            ..Self::default()
        }
    }

    /// Node potential `ϕ(u, s) ∈ [1 − ε, 1 + ε]`.
    pub fn phi(&self, u: VertexId, s: usize) -> f64 {
        hash_unit(
            self.potential_seed ^ ((u as u64) << 16) ^ s as u64,
            1.0 - self.coupling,
            1.0 + self.coupling,
        )
    }

    /// Edge potential `ψ(u, v, s', s) ∈ [1 − ε, 1 + ε]`.
    pub fn psi(&self, u: VertexId, v: VertexId, sp: usize, s: usize) -> f64 {
        hash_unit(
            self.potential_seed
                ^ ((u as u64) << 32)
                ^ ((v as u64) << 8)
                ^ ((sp as u64) << 4)
                ^ s as u64,
            1.0 - self.coupling,
            1.0 + self.coupling,
        )
    }

    /// `getContribution` of Algorithm 2, in linear space:
    /// `contribution[s] = Σ_{s'} ϕ(u,s')·ψ(u,v,s',s)·c(u,s')`.
    fn raw_contribution(&self, u: VertexId, v: VertexId, cu: &[f64]) -> Vec<f64> {
        let s_count = self.num_states;
        let mut out = vec![0.0; s_count];
        for (s, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (sp, &c) in cu.iter().enumerate() {
                // lint:allow(float-accum) — state-space dot product
                // *within* one edge's contribution; cross-edge
                // accumulation still flows through combine/retract.
                acc += self.phi(u, sp) * self.psi(u, v, sp, s) * c;
            }
            *slot = acc;
        }
        out
    }

    /// Final beliefs (`computeBelief` of Algorithm 2):
    /// `belief[v][s] ∝ ϕ(v,s) · value[v][s]`.
    pub fn beliefs(&self, v: VertexId, value: &[f64]) -> Vec<f64> {
        let mut b: Vec<f64> = (0..self.num_states)
            .map(|s| self.phi(v, s) * value[s])
            .collect();
        let sum: f64 = b.iter().sum();
        if sum > 0.0 {
            for x in b.iter_mut() {
                *x /= sum;
            }
        }
        b
    }
}

impl Algorithm for BeliefPropagation {
    type Value = Vec<f64>;
    type Agg = Vec<f64>;

    fn initial_value(&self, _v: VertexId) -> Vec<f64> {
        vec![1.0 / self.num_states as f64; self.num_states]
    }

    /// Log-space identity: the empty product is 1, i.e. all-zero logs.
    fn identity(&self) -> Vec<f64> {
        vec![0.0; self.num_states]
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        u: VertexId,
        v: VertexId,
        _w: Weight,
        cu: &Vec<f64>,
    ) -> Vec<f64> {
        // Contributions are strictly positive (potentials ≥ 0.5 and the
        // value vector is a distribution), so the logarithm is finite.
        self.raw_contribution(u, v, cu)
            .into_iter()
            .map(f64::ln)
            .collect()
    }

    /// Log-space product: `Π → Σ`.
    fn combine(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a += c;
        }
    }

    /// Log-space division (`atomicDivide`).
    fn retract(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a -= c;
        }
    }

    fn delta(
        &self,
        g: &GraphSnapshot,
        u: VertexId,
        v: VertexId,
        w: Weight,
        old: &Vec<f64>,
        new: &Vec<f64>,
    ) -> Option<Vec<f64>> {
        let oc = self.contribution(g, u, v, w, old);
        let nc = self.contribution(g, u, v, w, new);
        Some(nc.iter().zip(&oc).map(|(n, o)| n - o).collect())
    }

    /// Stable softmax: `exp(agg - max)` normalized.
    fn compute(&self, _v: VertexId, agg: &Vec<f64>, _g: &GraphSnapshot) -> Vec<f64> {
        let max = agg.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return self.initial_value(0);
        }
        let mut out: Vec<f64> = agg.iter().map(|&x| (x - max).exp()).collect();
        let sum: f64 = out.iter().sum();
        for x in out.iter_mut() {
            *x /= sum;
        }
        out
    }

    fn changed(&self, old: &Vec<f64>, new: &Vec<f64>) -> bool {
        linf(old, new) > self.tolerance
    }

    fn agg_heap_bytes(&self, agg: &Vec<f64>) -> usize {
        agg.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_graph::GraphBuilder;

    #[test]
    fn beliefs_are_distributions() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(3, 0, 1.0)
            .build();
        let bp = BeliefPropagation::default();
        let out = run_bsp(
            &bp,
            &g,
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..4 {
            let sum: f64 = out.vals[v].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(out.vals[v].iter().all(|&p| p > 0.0));
            let beliefs = bp.beliefs(v as VertexId, &out.vals[v]);
            let bsum: f64 = beliefs.iter().sum();
            assert!((bsum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn log_space_retract_inverts_combine() {
        let bp = BeliefPropagation::with_states(4);
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let cu = vec![0.1, 0.2, 0.3, 0.4];
        let contrib = bp.contribution(&g, 0, 1, 1.0, &cu);
        let mut agg = vec![1.0, -2.0, 0.5, 3.0];
        let orig = agg.clone();
        bp.combine(&mut agg, &contrib);
        bp.retract(&mut agg, &contrib);
        assert!(linf(&agg, &orig) < 1e-12);
    }

    #[test]
    fn contribution_is_finite_for_extreme_distributions() {
        let bp = BeliefPropagation::default();
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let cu = vec![1.0, 0.0, 0.0]; // one-hot distribution
        let c = bp.contribution(&g, 0, 1, 1.0, &cu);
        assert!(c.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn high_degree_vertex_does_not_overflow() {
        // 5000 in-edges: a raw product would overflow; log-space must not.
        let mut b = GraphBuilder::new(5001);
        for i in 1..=5000u32 {
            b = b.add_edge(i, 0, 1.0);
        }
        let g = b.build();
        let bp = BeliefPropagation::default();
        let out = run_bsp(
            &bp,
            &g,
            &EngineOptions::with_iterations(2),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert!(out.vals[0].iter().all(|x| x.is_finite() && *x > 0.0));
        let sum: f64 = out.vals[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn potentials_are_deterministic_and_bounded() {
        let bp = BeliefPropagation::default();
        assert_eq!(bp.phi(3, 1), bp.phi(3, 1));
        assert_eq!(bp.psi(3, 4, 0, 2), bp.psi(3, 4, 0, 2));
        for u in 0..50u32 {
            for s in 0..3 {
                let p = bp.phi(u, s);
                assert!((0.5..1.5).contains(&p), "default coupling 0.5");
            }
        }
    }
}
