//! Graph analytics on the GraphBolt incremental model.
//!
//! The six algorithms of the paper's evaluation (Table 4) plus SSSP/BFS:
//!
//! | Algorithm | Aggregation | Shape |
//! |-----------|-------------|-------|
//! | [`PageRank`] | `Σ c(u)/outdeg(u)` | simple sum, fused delta |
//! | [`BeliefPropagation`] | per-state `Π` (log-space `Σ`) | complex, retract = divide |
//! | [`LabelPropagation`] | per-label `Σ c(u,f)·w` | vector of sums |
//! | [`CoEm`] | `Σ c(u)·w / Σ w` | sum + destination normalization |
//! | [`CollaborativeFiltering`] | `⟨Σ c·cᵀ, Σ c·w⟩` | statically decomposed pair |
//! | [`TriangleCounter`] | `Σ |in(u) ∩ out(v)|` | single-shot, local maintenance |
//! | [`ShortestPaths`] | `min(c(u)+w)` | non-decomposable, re-evaluation |
//!
//! All except Triangle Counting implement
//! [`graphbolt_core::Algorithm`] and run on the
//! [`StreamingEngine`](graphbolt_core::StreamingEngine) (GraphBolt) or the
//! from-scratch baselines ([`graphbolt_core::run_bsp`]).

pub mod bp;
pub mod cc;
pub mod cf;
pub mod coem;
pub mod landmarks;
pub mod lp;
pub mod pr;
pub mod sssp;
pub mod sssp_multiset;
pub mod sswp;
pub mod tc;
pub mod util;

pub use bp::BeliefPropagation;
pub use cc::ConnectedComponents;
pub use cf::CollaborativeFiltering;
pub use coem::CoEm;
pub use landmarks::LandmarkDistances;
pub use lp::LabelPropagation;
pub use pr::PageRank;
pub use sssp::ShortestPaths;
pub use sssp_multiset::{MinBag, ShortestPathsMultiset};
pub use sswp::WidestPaths;
pub use tc::{count_full, count_per_vertex, local_clustering, TriangleCounter};
