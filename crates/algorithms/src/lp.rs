//! Label Propagation (LP) — Table 4:
//! `⊕ = ∀f: Σ c(u, f) · weight(u, v)` (Zhu–Ghahramani semi-supervised
//! label propagation with clamped seeds).

use std::sync::Arc;

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

use crate::util::linf;

/// Semi-supervised label propagation over `F` labels.
///
/// * value: a probability vector of length `F`,
/// * aggregation: per-label weighted sum of in-neighbor vectors — a
///   vector of simple sums, so the complex aggregation decomposes
///   statically (§3.3 step 1) and the fused delta is
///   `(new − old) · weight`,
/// * `∮`: normalize to a distribution; *seed* vertices are clamped to
///   their one-hot label.
#[derive(Debug, Clone)]
pub struct LabelPropagation {
    num_labels: usize,
    /// `seeds[v] = Some(label)` clamps vertex `v`.
    seeds: Arc<Vec<Option<u32>>>,
    /// Selective-scheduling tolerance on the L∞ distance.
    pub tolerance: f64,
}

impl LabelPropagation {
    /// Creates an instance with the given label count and seed
    /// assignment (indexed by vertex id; vertices beyond the vector are
    /// unlabeled).
    pub fn new(num_labels: usize, seeds: Vec<Option<u32>>) -> Self {
        assert!(num_labels >= 2, "need at least two labels");
        debug_assert!(seeds.iter().flatten().all(|&l| (l as usize) < num_labels));
        Self {
            num_labels,
            seeds: Arc::new(seeds),
            tolerance: 1e-6,
        }
    }

    /// Deterministically seeds every `stride`-th vertex with label
    /// `v % num_labels` — the synthetic seeding used by the benchmark
    /// harness.
    pub fn with_synthetic_seeds(num_labels: usize, n: usize, stride: usize) -> Self {
        let seeds = (0..n)
            .map(|v| (v % stride == 0).then_some((v % num_labels) as u32))
            .collect();
        Self::new(num_labels, seeds)
    }

    /// Number of labels `F`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    fn seed_of(&self, v: VertexId) -> Option<u32> {
        self.seeds.get(v as usize).copied().flatten()
    }

    fn one_hot(&self, label: u32) -> Vec<f64> {
        let mut x = vec![0.0; self.num_labels];
        x[label as usize] = 1.0;
        x
    }

    fn uniform(&self) -> Vec<f64> {
        vec![1.0 / self.num_labels as f64; self.num_labels]
    }

    /// Most likely label of a value vector.
    pub fn argmax(dist: &[f64]) -> usize {
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Algorithm for LabelPropagation {
    type Value = Vec<f64>;
    type Agg = Vec<f64>;

    fn initial_value(&self, v: VertexId) -> Vec<f64> {
        match self.seed_of(v) {
            Some(label) => self.one_hot(label),
            None => self.uniform(),
        }
    }

    fn identity(&self) -> Vec<f64> {
        vec![0.0; self.num_labels]
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &Vec<f64>,
    ) -> Vec<f64> {
        cu.iter().map(|x| x * w).collect()
    }

    fn combine(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a += c;
        }
    }

    fn retract(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a -= c;
        }
    }

    fn delta(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        old: &Vec<f64>,
        new: &Vec<f64>,
    ) -> Option<Vec<f64>> {
        Some(new.iter().zip(old).map(|(n, o)| (n - o) * w).collect())
    }

    fn compute(&self, v: VertexId, agg: &Vec<f64>, _g: &GraphSnapshot) -> Vec<f64> {
        if let Some(label) = self.seed_of(v) {
            return self.one_hot(label);
        }
        let sum: f64 = agg.iter().sum();
        // Incremental retraction can leave ±1e-16 float residue where the
        // true aggregation is empty (e.g. a vertex whose last in-edge was
        // deleted); normalizing by such a residue would amplify it
        // arbitrarily, so near-empty aggregations fall back to uniform.
        if sum <= 1e-12 {
            self.uniform()
        } else {
            agg.iter().map(|x| x / sum).collect()
        }
    }

    fn changed(&self, old: &Vec<f64>, new: &Vec<f64>) -> bool {
        linf(old, new) > self.tolerance
    }

    fn agg_heap_bytes(&self, agg: &Vec<f64>) -> usize {
        agg.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_graph::GraphBuilder;

    /// Two seed vertices with different labels at the ends of a path:
    /// labels must dominate their own half.
    #[test]
    fn labels_spread_from_seeds() {
        // 0 (seed A) ↔ 1 ↔ 2 ↔ 3 (seed B), symmetric edges.
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let lp = LabelPropagation::new(2, vec![Some(0), None, None, Some(1)]);
        let out = run_bsp(
            &lp,
            &g,
            &EngineOptions::with_iterations(30),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(LabelPropagation::argmax(&out.vals[1]), 0);
        assert_eq!(LabelPropagation::argmax(&out.vals[2]), 1);
        // Seeds stay clamped.
        assert_eq!(out.vals[0], vec![1.0, 0.0]);
        assert_eq!(out.vals[3], vec![0.0, 1.0]);
    }

    #[test]
    fn values_remain_distributions() {
        let g = GraphBuilder::new(5)
            .symmetric(true)
            .add_edge(0, 1, 0.3)
            .add_edge(1, 2, 0.9)
            .add_edge(2, 3, 0.5)
            .add_edge(3, 4, 0.7)
            .add_edge(4, 0, 0.2)
            .build();
        let lp = LabelPropagation::new(3, vec![Some(0), None, Some(1), None, Some(2)]);
        let out = run_bsp(
            &lp,
            &g,
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..5 {
            let sum: f64 = out.vals[v].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "vertex {v} sums to {sum}");
            assert!(out.vals[v].iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn isolated_vertex_stays_uniform() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).build();
        let lp = LabelPropagation::new(2, vec![Some(0), None, None]);
        let out = run_bsp(
            &lp,
            &g,
            &EngineOptions::with_iterations(5),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals[2], vec![0.5, 0.5]);
    }

    #[test]
    fn synthetic_seeding_is_deterministic() {
        let a = LabelPropagation::with_synthetic_seeds(4, 100, 10);
        let b = LabelPropagation::with_synthetic_seeds(4, 100, 10);
        for v in 0..100 {
            assert_eq!(a.initial_value(v), b.initial_value(v));
        }
        assert_eq!(a.seed_of(0), Some(0));
        assert_eq!(a.seed_of(5), None);
    }

    #[test]
    fn delta_matches_retract_combine() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 0.5).build();
        let lp = LabelPropagation::new(2, vec![None, None]);
        let old = vec![0.3, 0.7];
        let new = vec![0.6, 0.4];
        let mut a = vec![1.0, 1.0];
        lp.combine(&mut a, &lp.delta(&g, 0, 1, 0.5, &old, &new).unwrap());
        let mut b = vec![1.0, 1.0];
        lp.retract(&mut b, &lp.contribution(&g, 0, 1, 0.5, &old));
        lp.combine(&mut b, &lp.contribution(&g, 0, 1, 0.5, &new));
        assert!(linf(&a, &b) < 1e-12);
    }
}
