//! Landmark (multi-source) shortest-path distances.
//!
//! Distance oracles precompute, for a handful of *landmark* vertices, the
//! distance from every landmark to every vertex; arbitrary-pair queries
//! are then answered through the triangle inequality. On a streaming
//! graph the landmark table must track mutations — a natural GraphBolt
//! workload that exercises the non-decomposable path with *vector*
//! aggregation values (element-wise `min`), complementing the scalar
//! SSSP/CC exercisers.

use std::sync::Arc;

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// Distances from `k` landmark vertices, maintained simultaneously.
///
/// * value: `[d(l₀, v), …, d(l_{k−1}, v)]`,
/// * aggregation: element-wise `min(c(u) + w)` over in-edges —
///   non-decomposable, refined by re-evaluation,
/// * `∮`: clamps each landmark's own entry to 0.
#[derive(Debug, Clone)]
pub struct LandmarkDistances {
    landmarks: Arc<Vec<VertexId>>,
}

impl LandmarkDistances {
    /// Creates the algorithm for a fixed landmark set.
    pub fn new(landmarks: Vec<VertexId>) -> Self {
        assert!(!landmarks.is_empty(), "need at least one landmark");
        Self {
            landmarks: Arc::new(landmarks),
        }
    }

    /// Picks the `k` highest-out-degree vertices as landmarks (the usual
    /// oracle heuristic: hubs cover many shortest paths).
    pub fn top_degree(g: &GraphSnapshot, k: usize) -> Self {
        let mut by_degree: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        Self::new(by_degree.into_iter().take(k.max(1)).collect())
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Triangle-inequality upper bound on `d(u, v)` from two distance
    /// rows: `min_l d(l, u)? — landmarks give one-directional bounds on
    /// directed graphs, so this uses `d(l, u) + d(l, v)` as the classic
    /// symmetric-estimate heuristic (exact for tree-like detours through
    /// a landmark on symmetrized graphs).
    pub fn estimate(&self, row_u: &[f64], row_v: &[f64]) -> f64 {
        row_u
            .iter()
            .zip(row_v)
            .map(|(a, b)| a + b)
            .fold(f64::INFINITY, f64::min)
    }
}

impl Algorithm for LandmarkDistances {
    type Value = Vec<f64>;
    type Agg = Vec<f64>;

    fn initial_value(&self, v: VertexId) -> Vec<f64> {
        self.landmarks
            .iter()
            .map(|&l| if l == v { 0.0 } else { f64::INFINITY })
            .collect()
    }

    fn identity(&self) -> Vec<f64> {
        vec![f64::INFINITY; self.landmarks.len()]
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &Vec<f64>,
    ) -> Vec<f64> {
        cu.iter().map(|d| d + w).collect()
    }

    fn combine(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            if c < a {
                *a = *c;
            }
        }
    }

    fn decomposable(&self) -> bool {
        false
    }

    fn compute(&self, v: VertexId, agg: &Vec<f64>, _g: &GraphSnapshot) -> Vec<f64> {
        self.landmarks
            .iter()
            .zip(agg)
            .map(|(&l, &d)| if l == v { 0.0 } else { d })
            .collect()
    }

    fn agg_heap_bytes(&self, agg: &Vec<f64>) -> usize {
        agg.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShortestPaths;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode, StreamingEngine};
    use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(6)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(5, 3, 0.5)
            .add_edge(0, 5, 4.0)
            .build()
    }

    /// Each landmark's row must equal an independent single-source run.
    #[test]
    fn rows_match_single_source_runs() {
        let g = sample();
        let landmarks = vec![0u32, 5u32];
        let alg = LandmarkDistances::new(landmarks.clone());
        let opts = EngineOptions::with_iterations(8);
        let multi = run_bsp(&alg, &g, &opts, ExecutionMode::Full, &EngineStats::new());
        for (k, &l) in landmarks.iter().enumerate() {
            let single = run_bsp(
                &ShortestPaths::new(l),
                &g,
                &opts,
                ExecutionMode::Full,
                &EngineStats::new(),
            );
            for v in 0..g.num_vertices() {
                let (a, b) = (multi.vals[v][k], single.vals[v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                    "landmark {l} vertex {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn refinement_matches_scratch_under_mutations() {
        let g = sample();
        let alg = LandmarkDistances::new(vec![0, 5]);
        let opts = EngineOptions::with_iterations(8);
        let mut engine = StreamingEngine::new(g, alg.clone(), opts);
        engine.run_initial();

        let mut batch = MutationBatch::new();
        batch
            .add(Edge::new(4, 0, 0.25))
            .delete(Edge::new(2, 3, 1.0));
        engine.apply_batch(&batch).unwrap();

        let scratch = run_bsp(
            &alg,
            engine.graph(),
            &opts,
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..engine.graph().num_vertices() {
            for k in 0..2 {
                let (a, b) = (engine.values()[v][k], scratch.vals[v][k]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                    "vertex {v} landmark {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn top_degree_picks_hubs() {
        let g = sample();
        let alg = LandmarkDistances::top_degree(&g, 2);
        // Vertex 0 has out-degree 2, everything else ≤ 1.
        assert!(alg.landmarks().contains(&0));
        assert_eq!(alg.landmarks().len(), 2);
    }

    #[test]
    fn estimate_is_an_upper_bound_through_landmarks() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(1, 3, 2.0)
            .build();
        let alg = LandmarkDistances::new(vec![1]);
        let out = run_bsp(
            &alg,
            &g,
            &EngineOptions::with_iterations(6),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        // d(2, 3) = 3 via vertex 1; the landmark estimate through l = 1
        // is d(1,2) + d(1,3) = 1 + 2 = 3 — tight here.
        let est = alg.estimate(&out.vals[2], &out.vals[3]);
        assert_eq!(est, 3.0);
    }
}
