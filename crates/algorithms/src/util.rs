//! Shared helpers: deterministic hashing for synthetic model parameters
//! and a small dense linear solver for Collaborative Filtering.

/// SplitMix64 — deterministic stateless hash used to derive synthetic
/// model parameters (BP potentials, CF initial factors) from vertex/edge
/// ids, so runs are reproducible without storing parameter tables.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform value in `[lo, hi)` derived from a hash input.
#[inline]
pub fn hash_unit(x: u64, lo: f64, hi: f64) -> f64 {
    let h = splitmix64(x);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

/// Solves the dense system `A x = b` for small `d × d` matrices (CF's
/// normal equations) via Gaussian elimination with partial pivoting.
/// `a` is row-major and is consumed; returns `None` when the matrix is
/// numerically singular.
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>, d: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), d * d);
    debug_assert_eq!(b.len(), d);
    for col in 0..d {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * d + col].abs();
        for row in col + 1..d {
            let cand = a[row * d + col].abs();
            if cand > best {
                best = cand;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..d {
                a.swap(col * d + k, pivot * d + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * d + col];
        for row in col + 1..d {
            let factor = a[row * d + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..d {
                a[row * d + k] -= factor * a[col * d + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; d];
    for col in (0..d).rev() {
        let mut acc = b[col];
        for k in col + 1..d {
            // lint:allow(float-accum) — back-substitution arithmetic of
            // the dense solver; operates on one vertex's local system,
            // not on cross-edge vertex-value accumulation.
            acc -= a[col * d + k] * x[k];
        }
        x[col] = acc / a[col * d + col];
    }
    Some(x)
}

/// Max-norm distance between two equally sized vectors.
#[inline]
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn hash_unit_stays_in_range() {
        for i in 0..1000 {
            let v = hash_unit(i, 0.5, 1.5);
            assert!((0.5..1.5).contains(&v));
        }
    }

    #[test]
    fn solve_dense_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -2.0];
        let x = solve_dense(a, b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_general_case() {
        // A = [[2, 1], [1, 3]], b = [5, 10] → x = [1, 3].
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve_dense(a, b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_dense_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![7.0, 9.0];
        let x = solve_dense(a, b, 2).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_detects_singularity() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert!(solve_dense(a, b, 2).is_none());
    }

    #[test]
    fn linf_measures_max_gap() {
        assert_eq!(linf(&[1.0, 5.0], &[1.5, 5.1]), 0.5);
        assert_eq!(linf(&[], &[]), 0.0);
    }
}
