//! Collaborative Filtering (CF) — Table 4:
//! `⊕ = ⟨ Σ c(u)·c(u)ᵀ , Σ c(u)·weight(u,v) ⟩` (ALS-style).
//!
//! This is the paper's flagship *complex aggregation* (§3.3): the ALS
//! update
//!
//! ```text
//! c_i(v) = ( Σ c(u)c(u)ᵀ + λI )⁻¹ × Σ c(u)·weight(u,v)
//! ```
//!
//! is **statically decomposed** into a pair of simple sums — a `d × d`
//! Gram-matrix sum and a `d`-vector sum — carried together in one
//! aggregation value, while the matrix inverse stays in `∮`. Because the
//! Gram term transforms the source value before summing, its incremental
//! form requires **on-the-fly evaluation of discrete contributions**:
//! `cᵀ·cᵀᵗʳ − c·cᵗʳ` per changed edge, which is exactly what
//! [`Algorithm::delta`] computes here.

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

use crate::util::{hash_unit, linf, solve_dense};

/// ALS-style collaborative filtering with latent dimension `d`.
#[derive(Debug, Clone)]
pub struct CollaborativeFiltering {
    /// Latent factor dimension.
    pub dim: usize,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Selective-scheduling tolerance.
    pub tolerance: f64,
}

impl Default for CollaborativeFiltering {
    fn default() -> Self {
        Self {
            dim: 4,
            lambda: 1.0,
            tolerance: 1e-6,
        }
    }
}

impl CollaborativeFiltering {
    /// CF with a custom latent dimension.
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            ..Self::default()
        }
    }

    /// Pair layout inside the flat aggregation vector: `dim*dim` matrix
    /// entries followed by `dim` vector entries.
    fn agg_len(&self) -> usize {
        self.dim * self.dim + self.dim
    }

    /// `c·cᵀ` and `c·w` of a single edge, flattened.
    fn edge_contribution(&self, cu: &[f64], w: f64) -> Vec<f64> {
        let d = self.dim;
        let mut out = vec![0.0; self.agg_len()];
        for i in 0..d {
            for j in 0..d {
                out[i * d + j] = cu[i] * cu[j];
            }
        }
        for i in 0..d {
            out[d * d + i] = cu[i] * w;
        }
        out
    }
}

impl Algorithm for CollaborativeFiltering {
    type Value = Vec<f64>;
    type Agg = Vec<f64>;

    fn initial_value(&self, v: VertexId) -> Vec<f64> {
        // Deterministic pseudo-random factors in (0, 1): reproducible
        // without a stored factor table.
        (0..self.dim)
            .map(|k| hash_unit((v as u64) << 8 | k as u64, 0.1, 1.0))
            .collect()
    }

    fn identity(&self) -> Vec<f64> {
        vec![0.0; self.agg_len()]
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &Vec<f64>,
    ) -> Vec<f64> {
        self.edge_contribution(cu, w)
    }

    fn combine(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a += c;
        }
    }

    fn retract(&self, agg: &mut Vec<f64>, contrib: &Vec<f64>) {
        for (a, c) in agg.iter_mut().zip(contrib) {
            *a -= c;
        }
    }

    fn delta(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        old: &Vec<f64>,
        new: &Vec<f64>,
    ) -> Option<Vec<f64>> {
        // On-the-fly discrete contributions: the Gram term is recomputed
        // from both values and differenced; the linear term differences
        // directly (§3.3 step 2).
        let d = self.dim;
        let mut out = vec![0.0; self.agg_len()];
        for i in 0..d {
            for j in 0..d {
                out[i * d + j] = new[i] * new[j] - old[i] * old[j];
            }
        }
        for i in 0..d {
            out[d * d + i] = (new[i] - old[i]) * w;
        }
        Some(out)
    }

    fn compute(&self, v: VertexId, agg: &Vec<f64>, _g: &GraphSnapshot) -> Vec<f64> {
        let d = self.dim;
        let mut m = agg[..d * d].to_vec();
        for i in 0..d {
            // lint:allow(float-accum) — adds the fixed regularizer λ to
            // the normal-matrix diagonal once per solve; not an
            // accumulation over edge contributions.
            m[i * d + i] += self.lambda;
        }
        let b = agg[d * d..].to_vec();
        // λ > 0 keeps the system positive definite; the fallback keeps the
        // initial factors should numerical cancellation ever break that.
        solve_dense(m, b, d).unwrap_or_else(|| self.initial_value(v))
    }

    fn changed(&self, old: &Vec<f64>, new: &Vec<f64>) -> bool {
        linf(old, new) > self.tolerance
    }

    fn agg_heap_bytes(&self, agg: &Vec<f64>) -> usize {
        agg.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_graph::{Edge, GraphBuilder, GraphSnapshot};

    fn bipartite_ratings() -> GraphSnapshot {
        // Users 0..3 rate items 3..6 (symmetric edges, as ALS needs both
        // directions).
        GraphBuilder::new(6)
            .symmetric(true)
            .add_edge(0, 3, 5.0)
            .add_edge(0, 4, 3.0)
            .add_edge(1, 3, 4.0)
            .add_edge(1, 5, 1.0)
            .add_edge(2, 4, 2.0)
            .add_edge(2, 5, 5.0)
            .build()
    }

    #[test]
    fn factors_stay_finite() {
        let cf = CollaborativeFiltering::default();
        let out = run_bsp(
            &cf,
            &bipartite_ratings(),
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        for v in 0..6 {
            assert!(
                out.vals[v].iter().all(|x| x.is_finite()),
                "vertex {v}: {:?}",
                out.vals[v]
            );
        }
    }

    #[test]
    fn predictions_track_ratings() {
        // After ALS iterations, the dot product for a strongly rated pair
        // should exceed that of a weakly rated pair.
        let cf = CollaborativeFiltering::with_dim(4);
        let out = run_bsp(
            &cf,
            &bipartite_ratings(),
            &EngineOptions::with_iterations(20),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let strong = dot(&out.vals[0], &out.vals[3]); // rating 5
        let weak = dot(&out.vals[1], &out.vals[5]); // rating 1
        assert!(
            strong > weak,
            "strong pair {strong} should out-predict weak pair {weak}"
        );
    }

    #[test]
    fn delta_matches_retract_combine() {
        let cf = CollaborativeFiltering::with_dim(3);
        let g = GraphSnapshot::from_edges(2, &[Edge::new(0, 1, 2.0)]);
        let old = vec![0.5, -0.25, 1.0];
        let new = vec![0.75, 0.5, -1.0];
        let mut a = cf.identity();
        cf.combine(&mut a, &vec![1.0; cf.agg_len()]);
        let mut b = a.clone();
        cf.combine(&mut a, &cf.delta(&g, 0, 1, 2.0, &old, &new).unwrap());
        cf.retract(&mut b, &cf.contribution(&g, 0, 1, 2.0, &old));
        cf.combine(&mut b, &cf.contribution(&g, 0, 1, 2.0, &new));
        assert!(linf(&a, &b) < 1e-12);
    }

    #[test]
    fn compute_solves_regularized_system() {
        let cf = CollaborativeFiltering::with_dim(2);
        // M = [[1,0],[0,1]], b = [2, 4], λ = 1 → x = b / 2.
        let mut agg = cf.identity();
        agg[0] = 1.0;
        agg[3] = 1.0;
        agg[4] = 2.0;
        agg[5] = 4.0;
        let g = GraphSnapshot::empty(1);
        let x = cf.compute(0, &agg, &g);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn initial_factors_are_deterministic() {
        let cf = CollaborativeFiltering::default();
        assert_eq!(cf.initial_value(7), cf.initial_value(7));
        assert_ne!(cf.initial_value(7), cf.initial_value(8));
    }
}
