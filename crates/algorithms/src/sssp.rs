//! Single-Source Shortest Paths (SSSP) — the paper's non-decomposable
//! `min` aggregation (§5.4), used for the KickStarter comparison.

use graphbolt_core::Algorithm;
use graphbolt_graph::{GraphSnapshot, VertexId, Weight};

/// Bellman–Ford-shaped SSSP in the GraphBolt model.
///
/// * aggregation: `g_i(v) = min_{(u,v)} ( c_{i-1}(u) + w )` — `min` is
///   **non-decomposable** (§3.3): a deleted or increased contribution
///   cannot be removed from a scalar minimum, so the engine re-evaluates
///   impacted aggregations by pulling the full in-neighborhood from the
///   CSC index (the re-evaluation strategy the paper describes for
///   min/max),
/// * `∮`: `c_i(v) = min(g_i(v), source-clamp)` — the source is pinned to
///   distance 0.
///
/// Distances converge to true shortest paths once the iteration count
/// reaches the graph's (weighted-path hop) eccentricity.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source vertex.
    pub source: VertexId,
    /// When set, every edge counts hop 1 regardless of weight (BFS).
    pub unweighted: bool,
}

impl ShortestPaths {
    /// Weighted SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Self {
            source,
            unweighted: false,
        }
    }

    /// Unweighted BFS hop counts from `source`.
    pub fn bfs(source: VertexId) -> Self {
        Self {
            source,
            unweighted: true,
        }
    }
}

impl Algorithm for ShortestPaths {
    type Value = f64;
    type Agg = f64;

    fn initial_value(&self, v: VertexId) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn identity(&self) -> f64 {
        f64::INFINITY
    }

    fn contribution(
        &self,
        _g: &GraphSnapshot,
        _u: VertexId,
        _v: VertexId,
        w: Weight,
        cu: &f64,
    ) -> f64 {
        let step = if self.unweighted { 1.0 } else { w };
        cu + step
    }

    fn combine(&self, agg: &mut f64, contrib: &f64) {
        if *contrib < *agg {
            *agg = *contrib;
        }
    }

    fn decomposable(&self) -> bool {
        false
    }

    fn compute(&self, v: VertexId, agg: &f64, _g: &GraphSnapshot) -> f64 {
        if v == self.source {
            0.0
        } else {
            *agg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_core::{run_bsp, EngineOptions, EngineStats, ExecutionMode};
    use graphbolt_core::{EngineOptions as Opts, StreamingEngine};
    use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};

    fn weighted_graph() -> graphbolt_graph::GraphSnapshot {
        GraphBuilder::new(5)
            .add_edge(0, 1, 2.0)
            .add_edge(0, 2, 5.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 2.0)
            .add_edge(1, 3, 7.0)
            .add_edge(3, 4, 1.0)
            .build()
    }

    #[test]
    fn computes_weighted_shortest_paths() {
        let out = run_bsp(
            &ShortestPaths::new(0),
            &weighted_graph(),
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals, vec![0.0, 2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn bfs_counts_hops() {
        let out = run_bsp(
            &ShortestPaths::bfs(0),
            &weighted_graph(),
            &EngineOptions::with_iterations(10),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert_eq!(out.vals, vec![0.0, 1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).build();
        let out = run_bsp(
            &ShortestPaths::new(0),
            &g,
            &EngineOptions::with_iterations(5),
            ExecutionMode::Full,
            &EngineStats::new(),
        );
        assert!(out.vals[2].is_infinite());
    }

    #[test]
    fn edge_deletion_lengthens_paths_via_reevaluation() {
        let mut engine = StreamingEngine::new(
            weighted_graph(),
            ShortestPaths::new(0),
            Opts::with_iterations(10),
        );
        engine.run_initial();
        assert_eq!(engine.values()[3], 5.0);
        // Deleting the cheap 2→3 edge forces the 1→3 (weight 7) detour.
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(2, 3, 2.0));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(engine.values()[3], 9.0);
        assert_eq!(engine.values()[4], 10.0);
    }

    #[test]
    fn edge_addition_shortens_paths() {
        let mut engine = StreamingEngine::new(
            weighted_graph(),
            ShortestPaths::new(0),
            Opts::with_iterations(10),
        );
        engine.run_initial();
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 4, 1.5));
        engine.apply_batch(&batch).unwrap();
        assert_eq!(engine.values()[4], 1.5);
    }
}
