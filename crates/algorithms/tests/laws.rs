//! Algebraic-law registrations for every `Algorithm` implementation in
//! `graphbolt-algorithms` (see `graphbolt_core::laws` and DESIGN.md §9
//! "Algebraic laws").
//!
//! Each registration pairs the algorithm with a value generator matched
//! to its domain (ranks, distributions, latent factors, distances) and
//! a tolerance policy: exact `PartialEq` equality (tolerance `0.0`) for
//! comparison-based lattices whose folds never round, a small float
//! tolerance for sum-based aggregations whose fold order legitimately
//! perturbs low bits. The `check_laws::<T>` turbofish is load-bearing:
//! `cargo xtask lint`'s `law-coverage` rule matches it statically
//! against the workspace's `impl Algorithm for T` inventory.

use graphbolt_algorithms::{
    BeliefPropagation, CoEm, CollaborativeFiltering, ConnectedComponents, LabelPropagation,
    LandmarkDistances, PageRank, ShortestPaths, ShortestPathsMultiset, WidestPaths,
};
use graphbolt_core::laws::{check_laws, Law, LawSpec, Monotonic, SplitMix64};

/// A random probability distribution over `n` states.
fn distribution(rng: &mut SplitMix64, n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|_| rng.range_f64(0.05, 1.0)).collect();
    let total: f64 = raw.iter().fold(0.0, |acc, x| acc + x);
    raw.into_iter().map(|x| x / total).collect()
}

#[test]
fn pagerank_laws() {
    let spec = LawSpec::new(|rng| rng.range_f64(0.1, 3.0), |agg: &f64| vec![*agg])
        .tolerance(1e-9);
    let report = check_laws::<PageRank>(&PageRank::default(), spec).expect("PageRank is lawful");
    // PageRank provides both fused deltas, so the structural variant is
    // exercised too.
    assert!(report.laws.contains(&Law::FusedDeltaStructural));
}

#[test]
fn belief_propagation_laws() {
    let spec = LawSpec::new(
        |rng| distribution(rng, 3),
        |agg: &Vec<f64>| agg.clone(),
    )
    .tolerance(1e-9);
    check_laws::<BeliefPropagation>(&BeliefPropagation::with_states(3), spec)
        .expect("BeliefPropagation is lawful in log space");
}

#[test]
fn label_propagation_laws() {
    let spec = LawSpec::new(
        |rng| distribution(rng, 3),
        |agg: &Vec<f64>| agg.clone(),
    )
    .tolerance(1e-9);
    check_laws::<LabelPropagation>(&LabelPropagation::new(3, vec![None; 5]), spec)
        .expect("LabelPropagation is lawful");
}

#[test]
fn coem_laws() {
    let spec = LawSpec::new(|rng| rng.range_f64(0.0, 1.0), |agg: &f64| vec![*agg])
        .tolerance(1e-9);
    check_laws::<CoEm>(&CoEm::new(vec![None; 5]), spec).expect("CoEm is lawful");
}

#[test]
fn collaborative_filtering_laws() {
    let spec = LawSpec::new(
        |rng| (0..3).map(|_| rng.range_f64(0.1, 1.0)).collect::<Vec<f64>>(),
        |agg: &Vec<f64>| agg.clone(),
    )
    .tolerance(1e-9);
    check_laws::<CollaborativeFiltering>(&CollaborativeFiltering::with_dim(3), spec)
        .expect("CollaborativeFiltering's Gram/vector pair is lawful");
}

#[test]
fn shortest_paths_laws() {
    let spec = LawSpec::new(|rng| rng.range_f64(0.0, 20.0), |agg: &f64| vec![*agg])
        .monotonic(Monotonic::NonIncreasing);
    let report =
        check_laws::<ShortestPaths>(&ShortestPaths::new(0), spec).expect("SSSP min is lawful");
    // min is non-decomposable: the consistency law (retract rejected)
    // replaces the round-trip law.
    assert!(report.laws.contains(&Law::DecomposableConsistency));
    assert!(!report.laws.contains(&Law::RetractRoundTrip));
}

#[test]
fn shortest_paths_multiset_laws() {
    // The counted-multiset min (§5.4) makes min decomposable; exact
    // structural equality (tolerance 0) is required — candidate bags
    // must round-trip without loss.
    let spec = LawSpec::new(
        |rng| rng.range_f64(0.0, 20.0),
        |agg: &graphbolt_algorithms::MinBag| vec![agg.min()],
    )
    .monotonic(Monotonic::NonIncreasing);
    let report = check_laws::<ShortestPathsMultiset>(&ShortestPathsMultiset::new(0), spec)
        .expect("multiset min is lawful");
    assert!(report.laws.contains(&Law::RetractRoundTrip));
}

#[test]
fn connected_components_laws() {
    let spec = LawSpec::new(
        |rng| rng.range_usize(50) as f64,
        |agg: &f64| vec![*agg],
    )
    .monotonic(Monotonic::NonIncreasing);
    check_laws::<ConnectedComponents>(&ConnectedComponents::new(), spec)
        .expect("min-label is lawful");
}

#[test]
fn widest_paths_laws() {
    let spec = LawSpec::new(|rng| rng.range_f64(0.0, 10.0), |agg: &f64| vec![*agg])
        .monotonic(Monotonic::NonDecreasing);
    check_laws::<WidestPaths>(&WidestPaths::new(0), spec).expect("max-of-bottleneck is lawful");
}

#[test]
fn landmark_distances_laws() {
    let spec = LawSpec::new(
        |rng| (0..2).map(|_| rng.range_f64(0.0, 20.0)).collect::<Vec<f64>>(),
        |agg: &Vec<f64>| agg.clone(),
    )
    .monotonic(Monotonic::NonIncreasing);
    check_laws::<LandmarkDistances>(&LandmarkDistances::new(vec![0, 2]), spec)
        .expect("element-wise min is lawful");
}
