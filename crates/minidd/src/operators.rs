//! Differential operators: keyed arrangements, delta-join, and
//! recompute-and-diff reduce.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::collection::Collection;

/// A keyed arrangement: key → multiset of values. This is DD's indexed
/// operator state (an "arrangement"); both join inputs are arranged.
#[derive(Debug, Clone)]
pub struct Arrangement<K: Eq + Hash + Clone, V: Eq + Hash + Clone> {
    index: HashMap<K, Collection<V>>,
}

impl<K: Eq + Hash + Clone, V: Eq + Hash + Clone> Default for Arrangement<K, V> {
    fn default() -> Self {
        Self {
            index: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Eq + Hash + Clone> Arrangement<K, V> {
    /// Empty arrangement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a batch of keyed diffs.
    pub fn apply(&mut self, diffs: &Collection<(K, V)>) {
        for ((k, v), &m) in diffs.iter_pairs() {
            let slot = self.index.entry(k.clone()).or_default();
            slot.update(v.clone(), m);
            if slot.is_empty() {
                self.index.remove(k);
            }
        }
    }

    /// Values currently associated with `k`.
    pub fn get(&self, k: &K) -> Option<&Collection<V>> {
        self.index.get(k)
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when no key is present.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterates keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.index.keys()
    }
}

/// Differential binary join.
///
/// Maintains arrangements of both inputs and, per batch of input diffs,
/// emits the output diffs according to the bilinearity rule
/// `Δ(A ⋈ B) = ΔA ⋈ B ∪ A' ⋈ ΔB` (where `A'` is `A` *after* applying
/// `ΔA`). `emit` maps a matched `(key, a, b)` triple to an output record.
#[derive(Debug, Clone)]
pub struct JoinOp<K: Eq + Hash + Clone, A: Eq + Hash + Clone, B: Eq + Hash + Clone> {
    left: Arrangement<K, A>,
    right: Arrangement<K, B>,
    /// Record-level work performed (matched pairs emitted) — the DD
    /// analogue of edge computations.
    pub work: u64,
}

impl<K: Eq + Hash + Clone, A: Eq + Hash + Clone, B: Eq + Hash + Clone> Default for JoinOp<K, A, B> {
    fn default() -> Self {
        Self {
            left: Arrangement::new(),
            right: Arrangement::new(),
            work: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, A: Eq + Hash + Clone, B: Eq + Hash + Clone> JoinOp<K, A, B> {
    /// Empty join state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds diff batches into both inputs, returning output diffs.
    pub fn step<O: Eq + Hash + Clone>(
        &mut self,
        d_left: &Collection<(K, A)>,
        d_right: &Collection<(K, B)>,
        mut emit: impl FnMut(&K, &A, &B) -> O,
    ) -> Collection<(K, O)> {
        let mut out: Collection<(K, O)> = Collection::new();
        // ΔA ⋈ B (old B).
        for ((k, a), &ma) in d_left.iter_pairs() {
            if let Some(bs) = self.right.get(k) {
                for (b, &mb) in bs.iter_pairs() {
                    self.work += 1;
                    out.update((k.clone(), emit(k, a, b)), ma * mb);
                }
            }
        }
        // Advance A, then A' ⋈ ΔB.
        self.left.apply(d_left);
        for ((k, b), &mb) in d_right.iter_pairs() {
            if let Some(asv) = self.left.get(k) {
                for (a, &ma) in asv.iter_pairs() {
                    self.work += 1;
                    out.update((k.clone(), emit(k, a, b)), ma * mb);
                }
            }
        }
        self.right.apply(d_right);
        out
    }
}

/// Differential reduce (group-by-key aggregation).
///
/// Maintains the input arrangement and the last emitted output per key;
/// for each batch it recomputes the aggregate of every *touched* key and
/// emits retractions/assertions of changed outputs — exactly DD's
/// `reduce` contract.
#[derive(Debug, Clone)]
pub struct ReduceOp<K: Eq + Hash + Clone, V: Eq + Hash + Clone, O: Eq + Hash + Clone> {
    input: Arrangement<K, V>,
    last_output: HashMap<K, O>,
    /// Records inspected during recomputation.
    pub work: u64,
}

impl<K: Eq + Hash + Clone, V: Eq + Hash + Clone, O: Eq + Hash + Clone> Default
    for ReduceOp<K, V, O>
{
    fn default() -> Self {
        Self {
            input: Arrangement::new(),
            last_output: HashMap::new(),
            work: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Eq + Hash + Clone, O: Eq + Hash + Clone> ReduceOp<K, V, O> {
    /// Empty reduce state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies input diffs; `fold` computes a key's output from its full
    /// value multiset (`None` when the group is empty). Returns output
    /// diffs.
    pub fn step(
        &mut self,
        d_input: &Collection<(K, V)>,
        mut fold: impl FnMut(&K, &Collection<V>) -> Option<O>,
    ) -> Collection<(K, O)> {
        let touched: HashSet<K> = d_input.iter_pairs().map(|((k, _), _)| k.clone()).collect();
        self.input.apply(d_input);
        let mut out: Collection<(K, O)> = Collection::new();
        for k in touched {
            let new_out = match self.input.get(&k) {
                Some(group) => {
                    self.work += group.len() as u64;
                    fold(&k, group)
                }
                None => None,
            };
            let old_out = self.last_output.get(&k).cloned();
            if old_out == new_out {
                continue;
            }
            if let Some(o) = old_out {
                out.update((k.clone(), o), -1);
            }
            match new_out {
                Some(o) => {
                    out.update((k.clone(), o.clone()), 1);
                    self.last_output.insert(k, o);
                }
                None => {
                    self.last_output.remove(&k);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrangement_applies_and_consolidates() {
        let mut arr: Arrangement<u32, &str> = Arrangement::new();
        arr.apply(&Collection::from_diffs([((1, "a"), 1), ((1, "b"), 1)]));
        assert_eq!(arr.get(&1).unwrap().len(), 2);
        arr.apply(&Collection::from_diffs([((1, "a"), -1), ((1, "b"), -1)]));
        assert!(arr.get(&1).is_none());
    }

    #[test]
    fn join_produces_cross_products_per_key() {
        let mut join: JoinOp<u32, &str, i32> = JoinOp::new();
        let out = join.step(
            &Collection::from_diffs([((1, "x"), 1), ((2, "y"), 1)]),
            &Collection::from_diffs([((1, 10), 1), ((1, 20), 1)]),
            |_k, a, b| (a.to_string(), *b),
        );
        assert_eq!(out.multiplicity(&(1, ("x".into(), 10))), 1);
        assert_eq!(out.multiplicity(&(1, ("x".into(), 20))), 1);
        assert_eq!(out.len(), 2, "key 2 has no right match");
    }

    #[test]
    fn join_incremental_equals_batch() {
        // Feeding diffs in two steps must produce the same accumulated
        // output as one batch — the bilinearity property.
        let mut all_at_once: JoinOp<u32, i32, i32> = JoinOp::new();
        let left = Collection::from_diffs([((1, 5), 1), ((1, 6), 1)]);
        let right = Collection::from_diffs([((1, 100), 1)]);
        let big = all_at_once.step(&left, &right, |_k, a, b| a + b);

        let mut stepped: JoinOp<u32, i32, i32> = JoinOp::new();
        let mut acc = stepped.step(
            &Collection::from_diffs([((1, 5), 1)]),
            &Collection::from_diffs([((1, 100), 1)]),
            |_k, a, b| a + b,
        );
        let second = stepped.step(
            &Collection::from_diffs([((1, 6), 1)]),
            &Collection::new(),
            |_k, a, b| a + b,
        );
        acc.merge(&second);
        assert_eq!(big, acc);
    }

    #[test]
    fn join_retraction_cancels_output() {
        let mut join: JoinOp<u32, i32, i32> = JoinOp::new();
        let mut acc = join.step(
            &Collection::from_diffs([((1, 5), 1)]),
            &Collection::from_diffs([((1, 7), 1)]),
            |_k, a, b| a * b,
        );
        let retract = join.step(
            &Collection::from_diffs([((1, 5), -1)]),
            &Collection::new(),
            |_k, a, b| a * b,
        );
        acc.merge(&retract);
        assert!(acc.is_empty());
    }

    #[test]
    fn reduce_emits_output_diffs() {
        let mut red: ReduceOp<u32, i64, i64> = ReduceOp::new();
        let sum = |_: &u32, g: &Collection<i64>| -> Option<i64> {
            Some(g.iter_pairs().map(|(v, &m)| v * m).sum())
        };
        let out = red.step(&Collection::from_diffs([((1, 10), 1), ((1, 5), 1)]), sum);
        assert_eq!(out.multiplicity(&(1, 15)), 1);
        // Changing the group retracts the old output and asserts the new.
        let out2 = red.step(&Collection::from_diffs([((1, 5), -1)]), sum);
        assert_eq!(out2.multiplicity(&(1, 15)), -1);
        assert_eq!(out2.multiplicity(&(1, 10)), 1);
    }

    #[test]
    fn reduce_handles_emptied_groups() {
        let mut red: ReduceOp<u32, i64, i64> = ReduceOp::new();
        let count = |_: &u32, g: &Collection<i64>| -> Option<i64> {
            Some(g.iter_pairs().map(|(_, &m)| m).sum())
        };
        red.step(&Collection::from_diffs([((1, 9), 1)]), count);
        let out = red.step(&Collection::from_diffs([((1, 9), -1)]), count);
        assert_eq!(out.multiplicity(&(1, 1)), -1);
        assert_eq!(out.len(), 1);
    }
}
