//! Connected components on the mini differential dataflow — a third
//! computation demonstrating the engine's generality (DD's selling point
//! in §6 of the paper: its operators are algorithm-agnostic).

use graphbolt_graph::{GraphSnapshot, MutationBatch};

use crate::collection::OrderedF64;
use crate::iterate::{IterativeDataflow, Rec, StepSpec};

/// Spec: `label_{i+1}(v) = min( v, min_u label_i(u) )` over in-edges.
/// Labels are vertex ids carried as `OrderedF64` records.
#[derive(Debug, Clone)]
pub struct WccSpec;

impl StepSpec for WccSpec {
    type Val = OrderedF64;

    fn initial(&self, v: u32) -> Option<OrderedF64> {
        Some(OrderedF64(v as f64))
    }

    fn base(&self, v: u32) -> Option<OrderedF64> {
        // Every vertex is at least its own singleton component.
        Some(OrderedF64(v as f64))
    }

    fn contribution(&self, _u: u32, _v: u32, _w: f64, val: &OrderedF64) -> OrderedF64 {
        *val
    }

    fn fold(
        &self,
        _v: u32,
        group: &crate::collection::Collection<Rec<OrderedF64>>,
    ) -> Option<OrderedF64> {
        let mut best: Option<OrderedF64> = None;
        for (rec, &m) in group.iter_pairs() {
            debug_assert!(m > 0, "negative multiplicity in reduce group");
            let val = match rec {
                Rec::Base(x) | Rec::Contrib(x) => *x,
            };
            best = Some(match best {
                Some(b) if b <= val => b,
                _ => val,
            });
        }
        best
    }
}

/// Streaming min-label connected components on the mini-DD engine.
pub struct DdWcc {
    dd: IterativeDataflow<WccSpec>,
    num_vertices: usize,
}

impl DdWcc {
    /// Runs epoch 0 with `iters` label-exchange rounds (≥ diameter for
    /// exact components).
    pub fn new(g: &GraphSnapshot, iters: usize) -> Self {
        let records: Vec<(u32, u32, OrderedF64)> = g
            .edges()
            .into_iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        let mut dd = IterativeDataflow::new(WccSpec, iters);
        dd.initialize(g.num_vertices() as u32, &records);
        Self {
            dd,
            num_vertices: g.num_vertices(),
        }
    }

    /// Current component labels.
    pub fn labels(&self) -> Vec<u32> {
        let mut out: Vec<u32> = (0..self.num_vertices as u32).collect();
        for (v, val) in self.dd.state() {
            if (*v as usize) < out.len() {
                out[*v as usize] = val.0 as u32;
            }
        }
        out
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        let mut labels = self.labels();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Record-level operator work performed so far.
    pub fn work(&self) -> u64 {
        self.dd.work()
    }

    /// Applies a mutation batch as one differential epoch.
    pub fn apply_batch(&mut self, batch: &MutationBatch) {
        let new_n = self
            .num_vertices
            .max(batch.max_vertex_id().map_or(0, |m| m as usize + 1));
        self.num_vertices = new_n;
        let added: Vec<(u32, u32, OrderedF64)> = batch
            .additions()
            .iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        let removed: Vec<(u32, u32, OrderedF64)> = batch
            .deletions()
            .iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        self.dd.apply_mutations(new_n as u32, &added, &removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    fn reference(g: &GraphSnapshot) -> Vec<u32> {
        let n = g.num_vertices();
        let mut label: Vec<u32> = (0..n as u32).collect();
        loop {
            let mut changed = false;
            for u in 0..n as u32 {
                for v in g.out_neighbors(u) {
                    if label[u as usize] < label[*v as usize] {
                        label[*v as usize] = label[u as usize];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    fn two_paths() -> GraphSnapshot {
        GraphBuilder::new(6)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 5, 1.0)
            .build()
    }

    #[test]
    fn epoch_zero_labels_components() {
        let g = two_paths();
        let dd = DdWcc::new(&g, 8);
        assert_eq!(dd.labels(), reference(&g));
        assert_eq!(dd.component_count(), 2);
    }

    #[test]
    fn merge_and_split_track_reference() {
        let g = two_paths();
        let mut dd = DdWcc::new(&g, 8);
        let mut batch = MutationBatch::new();
        batch
            .add(Edge::unweighted(2, 3))
            .add(Edge::unweighted(3, 2));
        let g2 = g.apply(&batch).unwrap();
        dd.apply_batch(&batch);
        assert_eq!(dd.labels(), reference(&g2));
        assert_eq!(dd.component_count(), 1);

        let mut batch2 = MutationBatch::new();
        batch2
            .delete(Edge::unweighted(2, 3))
            .delete(Edge::unweighted(3, 2))
            .delete(Edge::unweighted(4, 5))
            .delete(Edge::unweighted(5, 4));
        let g3 = g2.apply(&batch2).unwrap();
        dd.apply_batch(&batch2);
        assert_eq!(dd.labels(), reference(&g3));
        assert_eq!(dd.component_count(), 3);
    }

    #[test]
    fn agrees_with_kickstarter_style_reference_on_random_stream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        let n = 12;
        let mut b = GraphBuilder::new(n).symmetric(true);
        for _ in 0..n {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                b = b.add_edge(u, v, 1.0);
            }
        }
        let mut g = b.build();
        let mut dd = DdWcc::new(&g, n);
        for _ in 0..4 {
            let mut batch = MutationBatch::new();
            for _ in 0..3 {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u == v {
                    continue;
                }
                if g.has_edge(u, v) {
                    batch.delete(Edge::unweighted(u, v));
                } else {
                    batch.add(Edge::unweighted(u, v));
                }
            }
            let batch = batch.normalize_against(&g);
            if batch.is_empty() {
                continue;
            }
            g = g.apply(&batch).unwrap();
            dd.apply_batch(&batch);
            assert_eq!(dd.labels(), reference(&g));
        }
    }
}
