//! Miniature differential dataflow — the generality baseline of §5.4(A).
//!
//! Differential Dataflow (McSherry et al., CIDR'13) processes arbitrary
//! incremental computations by flowing *diffs* — `(record, time,
//! multiplicity)` update tuples — through generic operators (join,
//! reduce) whose state is record-level hash indexes. Its strength is
//! generality; the GraphBolt paper's Figure 8/9 measure the cost of that
//! generality against a graph-aware runtime.
//!
//! This crate is a faithful miniature of the model restricted to the
//! shape the paper's comparison uses: an iterative computation
//!
//! ```text
//! state_{e,i+1} = step( reduce_v( join_u(edges_e, state_{e,i}) ) ∪ base )
//! ```
//!
//! advanced differentially both in the iteration dimension `i` (within an
//! epoch, as DD's `iterate` does) and in the epoch dimension `e` (edge
//! mutations). All operator state is record-level — hash-indexed
//! multisets with per-iteration traces, never CSR — so the engine pays
//! DD's characteristic costs: hashing, per-record diff bookkeeping, and
//! O(|V|·iters) trace memory.
//!
//! The delta-join rule `Δ(A ⋈ B) = ΔA ⋈ B ∪ A' ⋈ ΔB` and the
//! recompute-and-diff reduce are implemented in [`operators`];
//! [`iterate`] drives epochs; [`pagerank`] and [`sssp`] express the two
//! benchmark computations.

pub mod collection;
pub mod iterate;
pub mod operators;
pub mod pagerank;
pub mod sssp;
pub mod wcc;

pub use collection::{Collection, Diff, OrderedF64};
pub use iterate::{EdgeRecord, IterativeDataflow, StepSpec};
pub use pagerank::DdPageRank;
pub use sssp::DdSssp;
pub use wcc::DdWcc;
