//! PageRank expressed on the mini differential dataflow.
//!
//! §5.4(A): *"Graph computations can be expressed on Differential
//! Dataflow in edge-parallel manner by joining edge tuples with rank
//! values to be pushed across them, and then grouping them at destination
//! vertices' rank tuples."* Edge records carry `1 / out_degree(src)` as
//! their payload; when a mutation changes a source's degree, every edge
//! record of that source is retracted and re-asserted with the new
//! payload (in full DD this is a join with a differential degree
//! collection — the record churn is identical).

use std::collections::HashMap;

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

use crate::collection::OrderedF64;
use crate::iterate::{IterativeDataflow, Rec, StepSpec};

/// Quantization grid for rank records: float records must be compared
/// exactly for retraction, so outputs are rounded to a fixed grid (full
/// DD PageRank implementations quantize or use fixed point for the same
/// reason).
const GRID: f64 = 1e8;

fn quantize(x: f64) -> f64 {
    (x * GRID).round() / GRID
}

/// Spec: `rank_{i+1}(v) = 0.15 + 0.85 · Σ rank_i(u) / outdeg(u)`.
#[derive(Debug, Clone)]
pub struct PrSpec {
    damping: f64,
}

impl StepSpec for PrSpec {
    type Val = OrderedF64;

    fn initial(&self, _v: u32) -> Option<OrderedF64> {
        Some(OrderedF64(1.0))
    }

    fn base(&self, _v: u32) -> Option<OrderedF64> {
        // Zero-contribution marker so every vertex owns a reduce group.
        Some(OrderedF64(0.0))
    }

    fn contribution(&self, _u: u32, _v: u32, w: f64, val: &OrderedF64) -> OrderedF64 {
        OrderedF64(quantize(val.0 * w))
    }

    fn fold(
        &self,
        _v: u32,
        group: &crate::collection::Collection<Rec<OrderedF64>>,
    ) -> Option<OrderedF64> {
        let mut sum = 0.0;
        for (rec, &m) in group.iter_pairs() {
            if let Rec::Contrib(c) = rec {
                sum += c.0 * m as f64;
            }
        }
        Some(OrderedF64(quantize(
            (1.0 - self.damping) + self.damping * sum,
        )))
    }
}

/// Streaming PageRank on the mini-DD engine.
///
/// # Examples
///
/// ```
/// use graphbolt_graph::{Edge, GraphBuilder, MutationBatch};
/// use graphbolt_minidd::DdPageRank;
///
/// let g = GraphBuilder::new(3)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 1.0)
///     .add_edge(2, 0, 1.0)
///     .build();
/// let mut pr = DdPageRank::new(&g, 10);
/// let before = pr.ranks()[0];
///
/// let mut batch = MutationBatch::new();
/// batch.add(Edge::new(0, 2, 1.0));
/// pr.apply_batch(&batch);
/// assert_ne!(pr.ranks()[2], before);
/// ```
pub struct DdPageRank {
    dd: IterativeDataflow<PrSpec>,
    /// Current out-adjacency, to regenerate degree-weighted records.
    adj: Vec<Vec<VertexId>>,
}

impl DdPageRank {
    /// Runs epoch 0 over the snapshot with `iters` iterations.
    pub fn new(g: &GraphSnapshot, iters: usize) -> Self {
        let n = g.num_vertices();
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for u in 0..n as VertexId {
            adj[u as usize] = g.out_neighbors(u).to_vec();
        }
        let records: Vec<(u32, u32, OrderedF64)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, outs)| {
                let w = OrderedF64(1.0 / outs.len().max(1) as f64);
                outs.iter().map(move |&v| (u as u32, v, w))
            })
            .collect();
        let mut dd = IterativeDataflow::new(PrSpec { damping: 0.85 }, iters);
        dd.initialize(n as u32, &records);
        Self { dd, adj }
    }

    /// Record-level operator work performed so far.
    pub fn work(&self) -> u64 {
        self.dd.work()
    }

    /// Current ranks, indexed by vertex.
    pub fn ranks(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.adj.len()];
        for (v, val) in self.dd.state() {
            if (*v as usize) < out.len() {
                out[*v as usize] = val.0;
            }
        }
        out
    }

    /// Applies a mutation batch as one differential epoch.
    pub fn apply_mutations(&mut self, batch: &MutationBatch) {
        self.apply_batch(batch)
    }

    /// Applies a mutation batch as one differential epoch.
    pub fn apply_batch(&mut self, batch: &MutationBatch) {
        let new_n = self
            .adj
            .len()
            .max(batch.max_vertex_id().map_or(0, |m| m as usize + 1));
        self.adj.resize(new_n, Vec::new());

        // Sources whose degree changes: all their records churn.
        let mut touched: HashMap<u32, ()> = HashMap::new();
        for e in batch.additions().iter().chain(batch.deletions()) {
            touched.insert(e.src, ());
        }
        let mut removed = Vec::new();
        let mut added = Vec::new();
        for &u in touched.keys() {
            let old = &self.adj[u as usize];
            let w_old = OrderedF64(1.0 / old.len().max(1) as f64);
            for &v in old {
                removed.push((u, v, w_old));
            }
        }
        // Update adjacency.
        for e in batch.deletions() {
            self.adj[e.src as usize].retain(|&v| v != e.dst);
        }
        for e in batch.additions() {
            self.adj[e.src as usize].push(e.dst);
        }
        for &u in touched.keys() {
            let new = &self.adj[u as usize];
            let w_new = OrderedF64(1.0 / new.len().max(1) as f64);
            for &v in new {
                added.push((u, v, w_new));
            }
        }
        self.dd.apply_mutations(new_n as u32, &added, &removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    /// Reference synchronous PageRank.
    fn reference(g: &GraphSnapshot, iters: usize) -> Vec<f64> {
        let n = g.num_vertices();
        let mut pr = vec![1.0; n];
        for _ in 0..iters {
            let mut next = vec![0.0; n];
            for u in 0..n as VertexId {
                let share = pr[u as usize] / g.out_degree(u).max(1) as f64;
                for v in g.out_neighbors(u) {
                    next[*v as usize] += share;
                }
            }
            for x in next.iter_mut() {
                *x = 0.15 + 0.85 * *x;
            }
            pr = next;
        }
        pr
    }

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(5)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 0, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 0, 1.0)
            .build()
    }

    #[test]
    fn epoch_zero_matches_reference() {
        let g = sample();
        let pr = DdPageRank::new(&g, 8);
        let expect = reference(&g, 8);
        for (v, &want) in expect.iter().enumerate().take(5) {
            assert!(
                (pr.ranks()[v] - want).abs() < 1e-6,
                "v{v}: {} vs {}",
                pr.ranks()[v],
                want
            );
        }
    }

    #[test]
    fn incremental_epoch_matches_reference() {
        let g = sample();
        let mut pr = DdPageRank::new(&g, 8);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 3, 1.0)).delete(Edge::new(3, 4, 1.0));
        let g2 = g.apply(&batch).unwrap();
        pr.apply_batch(&batch);
        let expect = reference(&g2, 8);
        for (v, &want) in expect.iter().enumerate().take(5) {
            assert!(
                (pr.ranks()[v] - want).abs() < 1e-6,
                "v{v}: {} vs {}",
                pr.ranks()[v],
                want
            );
        }
    }

    #[test]
    fn sequence_of_epochs_stays_correct() {
        let mut g = sample();
        let mut pr = DdPageRank::new(&g, 6);
        let muts = [
            (Edge::new(1, 3, 1.0), None),
            (Edge::new(3, 1, 1.0), Some(Edge::new(2, 3, 1.0))),
            (Edge::new(2, 4, 1.0), Some(Edge::new(1, 3, 1.0))),
        ];
        for (add, del) in muts {
            let mut batch = MutationBatch::new();
            batch.add(add);
            if let Some(d) = del {
                batch.delete(d);
            }
            g = g.apply(&batch).unwrap();
            pr.apply_batch(&batch);
            let expect = reference(&g, 6);
            for (v, &want) in expect.iter().enumerate().take(5) {
                assert!(
                    (pr.ranks()[v] - want).abs() < 1e-6,
                    "v{v}: {} vs {}",
                    pr.ranks()[v],
                    want
                );
            }
        }
    }

    #[test]
    fn vertex_growth_is_handled() {
        let g = sample();
        let mut pr = DdPageRank::new(&g, 5);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(4, 7, 1.0));
        let g2 = g.apply(&batch).unwrap();
        pr.apply_batch(&batch);
        let expect = reference(&g2, 5);
        for (v, &want) in expect.iter().enumerate().take(8) {
            assert!(
                (pr.ranks()[v] - want).abs() < 1e-6,
                "v{v}: {} vs {}",
                pr.ranks()[v],
                want
            );
        }
    }
}
