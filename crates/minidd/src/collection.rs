//! Multiset collections of records with signed multiplicities.

use std::collections::HashMap;
use std::hash::Hash;

/// Signed multiplicity of a record, as in differential dataflow.
pub type Diff = i64;

/// A totally ordered, hashable `f64` wrapper so real-valued ranks and
/// distances can be collection records (DD requires records to be
/// data-comparable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    fn from(x: f64) -> Self {
        Self(x)
    }
}

/// A consolidated multiset: record → non-zero multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collection<D: Eq + Hash + Clone> {
    records: HashMap<D, Diff>,
}

impl<D: Eq + Hash + Clone> Default for Collection<D> {
    fn default() -> Self {
        Self {
            records: HashMap::new(),
        }
    }
}

impl<D: Eq + Hash + Clone> Collection<D> {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a collection from `(record, diff)` pairs, consolidating.
    pub fn from_diffs<I: IntoIterator<Item = (D, Diff)>>(iter: I) -> Self {
        let mut c = Self::new();
        for (d, m) in iter {
            c.update(d, m);
        }
        c
    }

    /// Adds `diff` copies of `record`, dropping the entry when the
    /// multiplicity consolidates to zero.
    pub fn update(&mut self, record: D, diff: Diff) {
        if diff == 0 {
            return;
        }
        match self.records.entry(record) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += diff;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(diff);
            }
        }
    }

    /// Applies all diffs from another collection.
    pub fn merge(&mut self, other: &Collection<D>) {
        for (d, &m) in other.iter_pairs() {
            self.update(d.clone(), m);
        }
    }

    /// Multiplicity of a record (0 when absent).
    pub fn multiplicity(&self, record: &D) -> Diff {
        self.records.get(record).copied().unwrap_or(0)
    }

    /// Number of distinct records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no record has non-zero multiplicity.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates `(record, multiplicity)` pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (&D, &Diff)> {
        self.records.iter()
    }

    /// Drains into `(record, diff)` pairs.
    pub fn into_diffs(self) -> impl Iterator<Item = (D, Diff)> {
        self.records.into_iter()
    }

    /// The negation of this collection (every diff sign-flipped).
    pub fn negated(&self) -> Collection<D> {
        Collection {
            records: self.records.iter().map(|(d, m)| (d.clone(), -m)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_consolidates_to_zero() {
        let mut c = Collection::new();
        c.update("a", 2);
        c.update("a", -2);
        assert!(c.is_empty());
        assert_eq!(c.multiplicity(&"a"), 0);
    }

    #[test]
    fn from_diffs_merges_duplicates() {
        let c = Collection::from_diffs([("x", 1), ("x", 3), ("y", -1)]);
        assert_eq!(c.multiplicity(&"x"), 4);
        assert_eq!(c.multiplicity(&"y"), -1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_applies_other_diffs() {
        let mut a = Collection::from_diffs([(1, 1), (2, 1)]);
        let b = Collection::from_diffs([(2, -1), (3, 5)]);
        a.merge(&b);
        assert_eq!(a.multiplicity(&1), 1);
        assert_eq!(a.multiplicity(&2), 0);
        assert_eq!(a.multiplicity(&3), 5);
    }

    #[test]
    fn negated_flips_signs() {
        let c = Collection::from_diffs([(7, 3)]);
        assert_eq!(c.negated().multiplicity(&7), -3);
    }

    #[test]
    fn ordered_f64_is_usable_as_record() {
        let mut c = Collection::new();
        c.update(OrderedF64(1.5), 1);
        c.update(OrderedF64(1.5), 1);
        assert_eq!(c.multiplicity(&OrderedF64(1.5)), 2);
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert!(OrderedF64(f64::NEG_INFINITY) < OrderedF64(0.0));
    }
}

#[cfg(test)]
mod law_tests {
    //! The collection layer forms a commutative group under diff merge —
    //! the algebra the delta-join bilinearity rule relies on.

    use super::*;
    use proptest::prelude::*;

    fn arb_collection() -> impl Strategy<Value = Collection<u8>> {
        proptest::collection::vec((any::<u8>(), -4i64..=4), 0..12)
            .prop_map(Collection::from_diffs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_commutative(a in arb_collection(), b in arb_collection()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(
            a in arb_collection(),
            b in arb_collection(),
            c in arb_collection(),
        ) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn negation_is_the_inverse(a in arb_collection()) {
            let mut sum = a.clone();
            sum.merge(&a.negated());
            prop_assert!(sum.is_empty());
        }

        #[test]
        fn consolidation_never_keeps_zeros(a in arb_collection()) {
            prop_assert!(a.iter_pairs().all(|(_, &m)| m != 0));
        }
    }
}
