//! Differential iterate: epochs × iterations over the graph join-reduce
//! pattern.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use crate::collection::{Collection, OrderedF64};
use crate::operators::{Arrangement, ReduceOp};

/// An edge record `(src, dst, weight)` — plain data, as DD sees it.
pub type EdgeRecord = (u32, u32, OrderedF64);

/// Records flowing into a destination group: per-edge contributions plus
/// injected base records (DD expresses "every vertex has a row" by
/// unioning a base collection before the reduce).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rec<V> {
    /// Base record for the vertex itself (initial value / source marker).
    Base(V),
    /// Contribution that arrived over an in-edge.
    Contrib(V),
}

/// User specification of one iterative computation.
pub trait StepSpec {
    /// The per-vertex state value carried in records.
    type Val: Eq + Hash + Clone + Debug;

    /// Initial state record of a vertex at iteration 0 (`None` = no
    /// record; e.g. unreached vertices in SSSP).
    fn initial(&self, v: u32) -> Option<Self::Val>;

    /// Base record injected into `v`'s reduce group at every iteration.
    fn base(&self, v: u32) -> Option<Self::Val>;

    /// Contribution sent along edge `(u, v, w)` given the source state.
    fn contribution(&self, u: u32, v: u32, w: f64, val: &Self::Val) -> Self::Val;

    /// Folds a destination group into the vertex's next state value.
    fn fold(&self, v: u32, group: &Collection<Rec<Self::Val>>) -> Option<Self::Val>;
}

/// The differential iterate driver: maintains per-iteration operator
/// state (arrangements + reduce traces) and advances it epoch by epoch,
/// flowing only diffs.
pub struct IterativeDataflow<S: StepSpec> {
    spec: S,
    iters: usize,
    /// Arranged edges keyed by source: `src → (dst, w)`.
    edges: Arrangement<u32, (u32, OrderedF64)>,
    /// State arrangement per iteration (`0..iters`), keyed by vertex.
    state_arrs: Vec<Arrangement<u32, S::Val>>,
    /// Reduce operator per iteration (`1..=iters`, index `i - 1`).
    reduces: Vec<ReduceOp<u32, Rec<S::Val>, S::Val>>,
    /// Consolidated final state (iteration `iters`).
    final_state: HashMap<u32, S::Val>,
    /// Vertices seen so far (for initial/base injection).
    num_vertices: u32,
    /// Record-level operator work (matched pairs + group rescans).
    work: u64,
}

impl<S: StepSpec> IterativeDataflow<S> {
    /// Creates a driver running `iters` iterations per epoch.
    pub fn new(spec: S, iters: usize) -> Self {
        assert!(iters >= 1);
        Self {
            spec,
            iters,
            edges: Arrangement::new(),
            state_arrs: (0..iters).map(|_| Arrangement::new()).collect(),
            reduces: (0..iters).map(|_| ReduceOp::new()).collect(),
            final_state: HashMap::new(),
            num_vertices: 0,
            work: 0,
        }
    }

    /// Record-level work performed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Current final state (after the last completed epoch).
    pub fn state(&self) -> &HashMap<u32, S::Val> {
        &self.final_state
    }

    /// Epoch 0: asserts all edges and vertex initializations, then runs
    /// the iterations differentially (everything is a diff from empty).
    pub fn initialize(&mut self, n: u32, edges: &[EdgeRecord]) {
        assert_eq!(self.num_vertices, 0, "initialize() must run once");
        let d_edges = Collection::from_diffs(edges.iter().map(|&(u, v, w)| ((u, (v, w)), 1)));
        self.advance_epoch(n, d_edges);
    }

    /// Applies one mutation batch as an epoch: `added` asserted, and
    /// `removed` retracted (weights of removed records must match the
    /// asserted ones).
    pub fn apply_mutations(&mut self, new_n: u32, added: &[EdgeRecord], removed: &[EdgeRecord]) {
        let mut d_edges: Collection<(u32, (u32, OrderedF64))> = Collection::new();
        for &(u, v, w) in added {
            d_edges.update((u, (v, w)), 1);
        }
        for &(u, v, w) in removed {
            d_edges.update((u, (v, w)), -1);
        }
        self.advance_epoch(new_n.max(self.num_vertices), d_edges);
    }

    fn advance_epoch(&mut self, new_n: u32, d_edges: Collection<(u32, (u32, OrderedF64))>) {
        // Diffs of initial state / base records for vertices entering the
        // id space this epoch.
        let mut d_state: Collection<(u32, S::Val)> = Collection::new();
        let mut d_base: Collection<(u32, Rec<S::Val>)> = Collection::new();
        for v in self.num_vertices..new_n {
            if let Some(val) = self.spec.initial(v) {
                d_state.update((v, val), 1);
            }
            if let Some(val) = self.spec.base(v) {
                d_base.update((v, Rec::Base(val)), 1);
            }
        }
        self.num_vertices = new_n;

        // Advance the shared edge arrangement once per epoch; the join
        // below uses the `ΔA ⋈ B_old ∪ A_new ⋈ ΔB` rule with A = edges.
        let edges_old_needed = !d_edges.is_empty();
        for i in 0..self.iters {
            // Join: Δedges ⋈ state_i_old.
            let mut d_contribs: Collection<(u32, Rec<S::Val>)> = d_base.clone();
            if edges_old_needed {
                for ((u, (v, w)), &me) in d_edges.iter_pairs() {
                    if let Some(vals) = self.state_arrs[i].get(u) {
                        for (val, &ms) in vals.iter_pairs() {
                            self.work += 1;
                            let c = self.spec.contribution(*u, *v, w.0, val);
                            d_contribs.update((*v, Rec::Contrib(c)), me * ms);
                        }
                    }
                }
            }
            if i == 0 {
                // Edge diffs only join with iteration-0 state above;
                // apply them to the shared arrangement before the
                // `edges_new ⋈ Δstate` half.
                self.edges.apply(&d_edges);
            }
            // Join: edges_new ⋈ Δstate_i.
            self.state_arrs[i].apply(&d_state);
            for ((u, val), &ms) in d_state.iter_pairs() {
                if let Some(outs) = self.edges.get(u) {
                    for ((v, w), &me) in outs.iter_pairs() {
                        self.work += 1;
                        let c = self.spec.contribution(*u, *v, w.0, val);
                        d_contribs.update((*v, Rec::Contrib(c)), ms * me);
                    }
                }
            }
            // Reduce at destinations.
            let spec = &self.spec;
            let d_out = self.reduces[i].step(&d_contribs, |v, group| spec.fold(*v, group));
            self.work += self.reduces[i].work;
            self.reduces[i].work = 0;
            d_state = d_out;
        }

        // Fold the last iteration's output diffs into the final state.
        for ((v, val), &m) in d_state.iter_pairs() {
            match m {
                1 => {
                    self.final_state.insert(*v, val.clone());
                }
                -1 => {
                    if self.final_state.get(v) == Some(val) {
                        self.final_state.remove(v);
                    }
                }
                _ => {
                    // Multiplicities other than ±1 cannot arise: reduce
                    // emits at most one assertion and one retraction per
                    // key per epoch.
                    debug_assert!(false, "unexpected multiplicity {m}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial spec: state = count of in-edges (weight ignored), to test
    /// the differential plumbing itself.
    struct DegreeSpec;

    impl StepSpec for DegreeSpec {
        type Val = i64;

        fn initial(&self, _v: u32) -> Option<i64> {
            Some(0)
        }

        fn base(&self, _v: u32) -> Option<i64> {
            Some(0)
        }

        fn contribution(&self, _u: u32, _v: u32, _w: f64, _val: &i64) -> i64 {
            1
        }

        fn fold(&self, _v: u32, group: &Collection<Rec<i64>>) -> Option<i64> {
            let mut count = 0i64;
            for (rec, &m) in group.iter_pairs() {
                if matches!(rec, Rec::Contrib(_)) {
                    count += m;
                }
            }
            Some(count)
        }
    }

    #[test]
    fn epoch_zero_computes_in_degrees() {
        let mut dd = IterativeDataflow::new(DegreeSpec, 2);
        dd.initialize(
            3,
            &[
                (0, 1, OrderedF64(1.0)),
                (2, 1, OrderedF64(1.0)),
                (1, 2, OrderedF64(1.0)),
            ],
        );
        assert_eq!(dd.state().get(&1), Some(&2));
        assert_eq!(dd.state().get(&2), Some(&1));
        assert_eq!(dd.state().get(&0), Some(&0));
    }

    #[test]
    fn mutations_update_degrees_incrementally() {
        let mut dd = IterativeDataflow::new(DegreeSpec, 2);
        dd.initialize(3, &[(0, 1, OrderedF64(1.0))]);
        let w0 = dd.work();
        dd.apply_mutations(3, &[(2, 1, OrderedF64(1.0))], &[(0, 1, OrderedF64(1.0))]);
        assert_eq!(dd.state().get(&1), Some(&1));
        assert!(dd.work() > w0);
    }

    #[test]
    fn vertex_growth_injects_initial_records() {
        let mut dd = IterativeDataflow::new(DegreeSpec, 2);
        dd.initialize(2, &[(0, 1, OrderedF64(1.0))]);
        dd.apply_mutations(5, &[(4, 1, OrderedF64(1.0))], &[]);
        assert_eq!(dd.state().get(&4), Some(&0));
        assert_eq!(dd.state().get(&1), Some(&2));
    }
}
