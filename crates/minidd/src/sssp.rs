//! SSSP expressed on the mini differential dataflow (Figure 9's third
//! system).
//!
//! The paper notes DD handles SSSP deletions well because it "maintains
//! an ordered map of path values and counts for each vertex, which get
//! quickly updated with value changes" — that is exactly the reduce
//! operator's per-key multiset here: a deletion retracts one candidate
//! record and the min is re-derived from the surviving ones.

use graphbolt_graph::{GraphSnapshot, MutationBatch, VertexId};

use crate::collection::OrderedF64;
use crate::iterate::{IterativeDataflow, Rec, StepSpec};

/// Spec: `dist_{i+1}(v) = min( base(v), min_u dist_i(u) + w(u, v) )`.
#[derive(Debug, Clone)]
pub struct SsspSpec {
    source: u32,
}

impl StepSpec for SsspSpec {
    type Val = OrderedF64;

    fn initial(&self, v: u32) -> Option<OrderedF64> {
        (v == self.source).then_some(OrderedF64(0.0))
    }

    fn base(&self, v: u32) -> Option<OrderedF64> {
        (v == self.source).then_some(OrderedF64(0.0))
    }

    fn contribution(&self, _u: u32, _v: u32, w: f64, val: &OrderedF64) -> OrderedF64 {
        OrderedF64(val.0 + w)
    }

    fn fold(
        &self,
        _v: u32,
        group: &crate::collection::Collection<Rec<OrderedF64>>,
    ) -> Option<OrderedF64> {
        let mut best: Option<OrderedF64> = None;
        for (rec, &m) in group.iter_pairs() {
            debug_assert!(m > 0, "negative multiplicity in reduce group");
            let val = match rec {
                Rec::Base(x) | Rec::Contrib(x) => *x,
            };
            best = Some(match best {
                Some(b) if b <= val => b,
                _ => val,
            });
        }
        best
    }
}

/// Streaming single-source shortest paths on the mini-DD engine.
pub struct DdSssp {
    dd: IterativeDataflow<SsspSpec>,
    num_vertices: usize,
}

impl DdSssp {
    /// Runs epoch 0 with `iters` Bellman–Ford rounds.
    pub fn new(g: &GraphSnapshot, source: VertexId, iters: usize) -> Self {
        let records: Vec<(u32, u32, OrderedF64)> = g
            .edges()
            .into_iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        let mut dd = IterativeDataflow::new(SsspSpec { source }, iters);
        dd.initialize(g.num_vertices() as u32, &records);
        Self {
            dd,
            num_vertices: g.num_vertices(),
        }
    }

    /// Record-level operator work performed so far.
    pub fn work(&self) -> u64 {
        self.dd.work()
    }

    /// Current distances (∞ for unreached vertices).
    pub fn distances(&self) -> Vec<f64> {
        let mut out = vec![f64::INFINITY; self.num_vertices];
        for (v, val) in self.dd.state() {
            if (*v as usize) < out.len() {
                out[*v as usize] = val.0;
            }
        }
        out
    }

    /// Applies a mutation batch as one differential epoch.
    pub fn apply_batch(&mut self, batch: &MutationBatch) {
        let new_n = self
            .num_vertices
            .max(batch.max_vertex_id().map_or(0, |m| m as usize + 1));
        self.num_vertices = new_n;
        let added: Vec<(u32, u32, OrderedF64)> = batch
            .additions()
            .iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        let removed: Vec<(u32, u32, OrderedF64)> = batch
            .deletions()
            .iter()
            .map(|e| (e.src, e.dst, OrderedF64(e.weight)))
            .collect();
        self.dd.apply_mutations(new_n as u32, &added, &removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbolt_graph::{Edge, GraphBuilder};

    fn reference(g: &GraphSnapshot, source: VertexId, iters: usize) -> Vec<f64> {
        let n = g.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        dist[source as usize] = 0.0;
        for _ in 0..iters {
            let mut next = dist.clone();
            for u in 0..n as VertexId {
                if dist[u as usize].is_finite() {
                    for (v, w) in g.out_edges(u) {
                        let cand = dist[u as usize] + w;
                        if cand < next[v as usize] {
                            next[v as usize] = cand;
                        }
                    }
                }
            }
            dist = next;
        }
        dist
    }

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(5)
            .add_edge(0, 1, 2.0)
            .add_edge(1, 2, 1.0)
            .add_edge(0, 2, 5.0)
            .add_edge(2, 3, 2.0)
            .add_edge(3, 4, 1.0)
            .build()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-9,
                "vertex {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn epoch_zero_matches_reference() {
        let g = sample();
        let dd = DdSssp::new(&g, 0, 8);
        assert_close(&dd.distances(), &reference(&g, 0, 8));
        assert_eq!(dd.distances()[3], 5.0);
    }

    #[test]
    fn deletion_reroutes_via_surviving_candidates() {
        let g = sample();
        let mut dd = DdSssp::new(&g, 0, 8);
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(1, 2, 1.0));
        let g2 = g.apply(&batch).unwrap();
        dd.apply_batch(&batch);
        assert_close(&dd.distances(), &reference(&g2, 0, 8));
        assert_eq!(dd.distances()[2], 5.0);
    }

    #[test]
    fn addition_shortens_paths() {
        let g = sample();
        let mut dd = DdSssp::new(&g, 0, 8);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(0, 4, 0.5));
        let g2 = g.apply(&batch).unwrap();
        dd.apply_batch(&batch);
        assert_close(&dd.distances(), &reference(&g2, 0, 8));
        assert_eq!(dd.distances()[4], 0.5);
    }

    #[test]
    fn disconnection_removes_records() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let mut dd = DdSssp::new(&g, 0, 6);
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(0, 1, 1.0));
        dd.apply_batch(&batch);
        assert!(dd.distances()[1].is_infinite());
        assert!(dd.distances()[2].is_infinite());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(25))]
        #[test]
        fn streaming_matches_reference(seed in 0u64..400) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(4..12usize);
            let mut edges = Vec::new();
            for u in 0..n as VertexId {
                for v in 0..n as VertexId {
                    if u != v && rng.gen_bool(0.3) {
                        edges.push(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.25));
                    }
                }
            }
            let mut g = GraphSnapshot::from_edges(n, &edges);
            let iters = n; // enough rounds to converge
            let mut dd = DdSssp::new(&g, 0, iters);
            for _ in 0..3 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if g.has_edge(u, v) {
                        batch.delete(Edge::new(u, v, g.edge_weight(u, v).unwrap()));
                    } else {
                        batch.add(Edge::new(u, v, (rng.gen_range(1..20) as f64) * 0.25));
                    }
                }
                let batch = batch.normalize_against(&g);
                if batch.is_empty() { continue; }
                g = g.apply(&batch).unwrap();
                dd.apply_batch(&batch);
                let expect = reference(&g, 0, iters);
                let got = dd.distances();
                for v in 0..n {
                    proptest::prop_assert!(
                        (got[v].is_infinite() && expect[v].is_infinite())
                            || (got[v] - expect[v]).abs() < 1e-9,
                        "seed {} vertex {}: {} vs {}", seed, v, got[v], expect[v]
                    );
                }
            }
        }
    }
}
