//! Mutation-stream driver implementing the paper's evaluation methodology.
//!
//! §5.1: *"we obtained an initial fixed point and streamed in a set of edge
//! insertions and deletions for the rest of the computation. After 50% of
//! the edges were loaded, the remaining edges were treated as edge
//! additions that were streamed in. Edges to be deleted were selected from
//! the loaded graph and deletion requests were mixed with addition
//! requests in the update stream."*
//!
//! §5.3(B) additionally defines **Hi**/**Lo** workloads where mutations
//! target high- / low-out-degree vertices.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::mutation::MutationBatch;
use crate::snapshot::GraphSnapshot;
use crate::types::{Edge, VertexId};

/// Degree targeting of generated mutations (§5.3(B)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadBias {
    /// Mutations drawn uniformly from the stream / edge set.
    Uniform,
    /// Mutations incident to high-out-degree vertices ("Hi": changes
    /// affect many vertices).
    HighDegree,
    /// Mutations incident to low-out-degree vertices ("Lo": impact is
    /// contained).
    LowDegree,
}

/// Configuration of a [`MutationStream`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Fraction of all edges loaded into the initial snapshot (paper: 0.5).
    pub load_fraction: f64,
    /// Fraction of each batch that are deletions (paper mixes deletions
    /// into the addition stream; we default to 0.1).
    pub deletion_fraction: f64,
    /// Degree targeting.
    pub bias: WorkloadBias,
    /// RNG seed — streams are fully deterministic per seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            load_fraction: 0.5,
            deletion_fraction: 0.1,
            bias: WorkloadBias::Uniform,
            seed: 0xB017,
        }
    }
}

/// Deterministic generator of mutation batches over an edge population.
///
/// # Examples
///
/// ```
/// use graphbolt_graph::{generators, MutationStream, StreamConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let edges = generators::erdos_renyi(200, 2000, true, &mut rng);
/// let mut stream = MutationStream::new(edges, StreamConfig::default());
/// let g0 = stream.initial_snapshot();
/// let batch = stream.next_batch(&g0, 50).unwrap();
/// assert!(batch.len() <= 50 && !batch.is_empty());
/// let g1 = g0.apply(&batch).unwrap();
/// assert!(g1.check_consistency());
/// ```
pub struct MutationStream {
    initial: GraphSnapshot,
    /// Additions not yet streamed, consumed from the back.
    pending: Vec<Edge>,
    cfg: StreamConfig,
    rng: SmallRng,
    exhausted_warning: bool,
}

impl MutationStream {
    /// Splits `edges` into an initial snapshot (`load_fraction`) and a
    /// pending addition stream (the rest), after a deterministic shuffle.
    pub fn new(mut edges: Vec<Edge>, cfg: StreamConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.load_fraction),
            "load_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.deletion_fraction),
            "deletion_fraction must be in [0, 1]"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Fisher-Yates shuffle for a deterministic stream order.
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
        let n = crate::generators::vertex_count(&edges);
        let split = ((edges.len() as f64) * cfg.load_fraction).round() as usize;
        let pending = edges.split_off(split.min(edges.len()));
        let initial = GraphSnapshot::from_edges(n, &edges);
        Self {
            initial,
            pending,
            cfg,
            rng,
            exhausted_warning: false,
        }
    }

    /// The snapshot containing the loaded 50% of edges.
    pub fn initial_snapshot(&self) -> GraphSnapshot {
        self.initial.clone()
    }

    /// Number of additions still queued.
    pub fn pending_additions(&self) -> usize {
        self.pending.len()
    }

    /// Produces the next mutation batch of (up to) `size` mutations
    /// consistent with `current`, or `None` once the addition stream is
    /// exhausted and no deletions can be sampled.
    ///
    /// The returned batch always validates against `current`.
    pub fn next_batch(&mut self, current: &GraphSnapshot, size: usize) -> Option<MutationBatch> {
        assert!(size > 0);
        let want_deletions = ((size as f64) * self.cfg.deletion_fraction).round() as usize;
        let want_additions = size - want_deletions;

        let mut batch = MutationBatch::new();
        self.fill_additions(current, want_additions, &mut batch);
        self.fill_deletions(current, want_deletions, &mut batch);
        let batch = batch.normalize_against(current);
        if batch.is_empty() {
            if !self.exhausted_warning {
                self.exhausted_warning = true;
            }
            None
        } else {
            Some(batch)
        }
    }

    fn fill_additions(&mut self, current: &GraphSnapshot, want: usize, batch: &mut MutationBatch) {
        match self.cfg.bias {
            WorkloadBias::Uniform => {
                let mut taken = 0;
                while taken < want {
                    match self.pending.pop() {
                        Some(e) => {
                            // Skip additions already present (a prior biased
                            // batch may have inserted an overlapping edge).
                            if !((e.src as usize) < current.num_vertices()
                                && current.has_edge(e.src, e.dst))
                            {
                                batch.add(e);
                                taken += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            bias => {
                // Synthesize additions whose *source* is degree-targeted so
                // the mutation's blast radius is controlled.
                let sources = self.biased_sources(current, bias, want);
                let n = current.num_vertices() as VertexId;
                for src in sources {
                    for _ in 0..8 {
                        let dst = self.rng.gen_range(0..n);
                        if dst != src && !current.has_edge(src, dst) {
                            batch.add(Edge::new(src, dst, self.rng.gen_range(0.05..=1.0)));
                            break;
                        }
                    }
                }
            }
        }
    }

    fn fill_deletions(&mut self, current: &GraphSnapshot, want: usize, batch: &mut MutationBatch) {
        if current.num_edges() == 0 {
            return;
        }
        let sources = match self.cfg.bias {
            WorkloadBias::Uniform => Vec::new(),
            bias => self.biased_sources(current, bias, want),
        };
        let mut got = 0;
        let mut attempts = 0;
        let max_attempts = want * 32 + 64;
        while got < want && attempts < max_attempts {
            attempts += 1;
            let src = if sources.is_empty() {
                self.rng.gen_range(0..current.num_vertices()) as VertexId
            } else {
                sources[self.rng.gen_range(0..sources.len())]
            };
            let deg = current.out_degree(src);
            if deg == 0 {
                continue;
            }
            let k = self.rng.gen_range(0..deg);
            let dst = current.out_neighbors(src)[k];
            let w = current.csr().weights(src)[k];
            batch.delete(Edge::new(src, dst, w));
            got += 1;
        }
    }

    /// Picks `count` source vertices from the top (Hi) or bottom (Lo) of
    /// the out-degree distribution.
    fn biased_sources(
        &mut self,
        current: &GraphSnapshot,
        bias: WorkloadBias,
        count: usize,
    ) -> Vec<VertexId> {
        let n = current.num_vertices();
        let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(current.out_degree(v)));
        let pool: Vec<VertexId> = match bias {
            WorkloadBias::HighDegree => by_degree.iter().take((n / 100).max(16)).copied().collect(),
            WorkloadBias::LowDegree => by_degree
                .iter()
                .rev()
                .filter(|&&v| current.out_degree(v) > 0)
                .take((n / 2).max(16))
                .copied()
                .collect(),
            WorkloadBias::Uniform => by_degree,
        };
        if pool.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| pool[self.rng.gen_range(0..pool.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    fn population(seed: u64) -> Vec<Edge> {
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi(300, 3000, true, &mut rng)
    }

    #[test]
    fn stream_splits_population() {
        let stream = MutationStream::new(population(1), StreamConfig::default());
        let g = stream.initial_snapshot();
        assert_eq!(g.num_edges(), 1500);
        assert_eq!(stream.pending_additions(), 1500);
    }

    #[test]
    fn batches_validate_and_apply() {
        let mut stream = MutationStream::new(population(2), StreamConfig::default());
        let mut g = stream.initial_snapshot();
        for _ in 0..10 {
            let batch = stream.next_batch(&g, 100).expect("stream not exhausted");
            assert!(batch.validate(&g).is_ok());
            g = g.apply(&batch).unwrap();
            assert!(g.check_consistency());
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let cfg = StreamConfig::default();
        let mut s1 = MutationStream::new(population(3), cfg);
        let mut s2 = MutationStream::new(population(3), cfg);
        let g = s1.initial_snapshot();
        assert_eq!(s1.next_batch(&g, 64), s2.next_batch(&g, 64));
    }

    #[test]
    fn stream_exhausts_eventually() {
        let cfg = StreamConfig {
            deletion_fraction: 0.0,
            ..StreamConfig::default()
        };
        let mut stream = MutationStream::new(population(4), cfg);
        let mut g = stream.initial_snapshot();
        let mut batches = 0;
        while let Some(b) = stream.next_batch(&g, 500) {
            g = g.apply(&b).unwrap();
            batches += 1;
            assert!(batches < 100, "stream failed to exhaust");
        }
        assert_eq!(stream.pending_additions(), 0);
        assert_eq!(g.num_edges(), 3000);
    }

    #[test]
    fn high_degree_bias_targets_hubs() {
        let cfg = StreamConfig {
            bias: WorkloadBias::HighDegree,
            deletion_fraction: 0.5,
            ..StreamConfig::default()
        };
        let mut stream = MutationStream::new(population(5), cfg);
        let g = stream.initial_snapshot();
        let batch = stream.next_batch(&g, 50).unwrap();
        let mut degrees: Vec<usize> = (0..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = degrees[(g.num_vertices() / 100).max(16) - 1];
        for e in batch.deletions() {
            assert!(
                g.out_degree(e.src) >= threshold,
                "deletion source {} has degree {} < hub threshold {}",
                e.src,
                g.out_degree(e.src),
                threshold
            );
        }
    }

    #[test]
    fn low_degree_bias_avoids_hubs() {
        let cfg = StreamConfig {
            bias: WorkloadBias::LowDegree,
            deletion_fraction: 0.5,
            ..StreamConfig::default()
        };
        let mut stream = MutationStream::new(population(6), cfg);
        let g = stream.initial_snapshot();
        let batch = stream.next_batch(&g, 50).unwrap();
        let max_deg = (0..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        for e in batch.deletions() {
            assert!(g.out_degree(e.src) < max_deg);
        }
    }
}
