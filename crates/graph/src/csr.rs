//! Compressed sparse row adjacency index.
//!
//! A single [`Adjacency`] stores one direction of a graph (out-edges for
//! CSR, in-edges for CSC). The GraphBolt snapshot keeps one of each so the
//! execution engine can switch between push (source-indexed) and pull
//! (destination-indexed) traversal, which is the backbone of Ligra-style
//! direction optimization (§4.1 of the paper).

use crate::types::{Edge, VertexId, Weight};

/// One-directional compressed adjacency: per-vertex contiguous, sorted
/// neighbor slices.
///
/// Neighbors of each vertex are kept sorted by id, enabling `O(log d)`
/// membership queries ([`Adjacency::has_edge`]) and linear-time sorted set
/// intersection, which Triangle Counting relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    /// `offsets[v]..offsets[v + 1]` is the slice of `v`'s neighbors.
    offsets: Vec<usize>,
    /// Flattened neighbor ids, sorted within each vertex slice.
    targets: Vec<VertexId>,
    /// Weight parallel to `targets`.
    weights: Vec<Weight>,
}

impl Adjacency {
    /// Builds an adjacency index from `(vertex, neighbor, weight)` triples.
    ///
    /// `edges` does not need to be sorted; duplicates are kept (callers
    /// that need simple graphs deduplicate before building). `n` is the
    /// number of vertices and must exceed every id appearing in `edges`.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= n`; constructing an index
    /// that silently drops edges would corrupt downstream dependency
    /// tracking, so this is a programming error.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut degrees = vec![0usize; n];
        for e in edges {
            assert!(
                (e.src as usize) < n,
                "edge source {} out of bounds (n = {})",
                e.src,
                n
            );
            assert!(
                (e.dst as usize) < n,
                "edge target {} out of bounds (n = {})",
                e.dst,
                n
            );
            degrees[e.src as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0.0; edges.len()];
        let mut cursor = offsets[..n].to_vec();
        for e in edges {
            let slot = cursor[e.src as usize];
            targets[slot] = e.dst;
            weights[slot] = e.weight;
            cursor[e.src as usize] += 1;
        }
        let mut adj = Self {
            offsets,
            targets,
            weights,
        };
        adj.sort_slices();
        adj
    }

    /// Creates an empty adjacency over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    fn sort_slices(&mut self) {
        let n = self.num_vertices();
        for v in 0..n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            if hi - lo > 1 {
                let mut pairs: Vec<(VertexId, Weight)> = self.targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(self.weights[lo..hi].iter().copied())
                    .collect();
                pairs.sort_by_key(|&(t, _)| t);
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    self.targets[lo + i] = t;
                    self.weights[lo + i] = w;
                }
            }
        }
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Adjacency::neighbors`].
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Returns `true` if the directed edge `v → t` exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use graphbolt_graph::{Adjacency, Edge};
    /// let adj = Adjacency::from_edges(3, &[Edge::unweighted(0, 2)]);
    /// assert!(adj.has_edge(0, 2));
    /// assert!(!adj.has_edge(2, 0));
    /// ```
    #[inline]
    pub fn has_edge(&self, v: VertexId, t: VertexId) -> bool {
        self.neighbors(v).binary_search(&t).is_ok()
    }

    /// Returns the weight of edge `v → t`, if present. When parallel edges
    /// exist, an arbitrary one of them is reported.
    pub fn edge_weight(&self, v: VertexId, t: VertexId) -> Option<Weight> {
        self.neighbors(v)
            .binary_search(&t)
            .ok()
            .map(|i| self.weights(v)[i])
    }

    /// Sum of edge weights incident to `v` in this direction; used by
    /// destination-normalized aggregations such as CoEM.
    pub fn weight_sum(&self, v: VertexId) -> Weight {
        self.weights(v).iter().sum()
    }

    /// Applies a batch of per-vertex edge set replacements, producing a new
    /// index. `changed` maps vertex id to its complete new `(target,
    /// weight)` list (sorted or not); vertices absent from `changed` keep
    /// their current slice. `new_n >= self.num_vertices()` grows the vertex
    /// space.
    ///
    /// This is the two-pass adjustment from §4.1: pass one recomputes
    /// offsets, pass two copies unchanged slices and writes replaced ones.
    pub fn rebuild_with(
        &self,
        new_n: usize,
        changed: &std::collections::HashMap<VertexId, Vec<(VertexId, Weight)>>,
    ) -> Self {
        assert!(new_n >= self.num_vertices());
        let mut offsets = Vec::with_capacity(new_n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for v in 0..new_n {
            let d = match changed.get(&(v as VertexId)) {
                Some(list) => list.len(),
                None if v < self.num_vertices() => self.degree(v as VertexId),
                None => 0,
            };
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; acc];
        let mut weights = vec![0.0; acc];
        for (v, &lo) in offsets[..new_n].iter().enumerate() {
            match changed.get(&(v as VertexId)) {
                Some(list) => {
                    let mut list = list.clone();
                    list.sort_by_key(|&(t, _)| t);
                    for (i, (t, w)) in list.into_iter().enumerate() {
                        targets[lo + i] = t;
                        weights[lo + i] = w;
                    }
                }
                None if v < self.num_vertices() => {
                    let (slo, shi) = (self.offsets[v], self.offsets[v + 1]);
                    targets[lo..lo + (shi - slo)].copy_from_slice(&self.targets[slo..shi]);
                    weights[lo..lo + (shi - slo)].copy_from_slice(&self.weights[slo..shi]);
                }
                None => {}
            }
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Returns all edges as `(v, target, weight)` triples in index order.
    pub fn to_edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for v in 0..self.num_vertices() as VertexId {
            for (t, w) in self.edges(v) {
                out.push(Edge::new(v, t, w));
            }
        }
        out
    }

    /// Estimated heap footprint in bytes (offsets + targets + weights).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample() -> Adjacency {
        Adjacency::from_edges(
            4,
            &[
                Edge::new(0, 2, 1.0),
                Edge::new(0, 1, 2.0),
                Edge::new(2, 3, 3.0),
                Edge::new(3, 0, 4.0),
            ],
        )
    }

    #[test]
    fn from_edges_builds_sorted_slices() {
        let adj = sample();
        assert_eq!(adj.num_vertices(), 4);
        assert_eq!(adj.num_edges(), 4);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.weights(0), &[2.0, 1.0]);
        assert_eq!(adj.degree(1), 0);
        assert_eq!(adj.neighbors(3), &[0]);
    }

    #[test]
    fn has_edge_and_weight_lookup() {
        let adj = sample();
        assert!(adj.has_edge(0, 1));
        assert!(!adj.has_edge(1, 0));
        assert_eq!(adj.edge_weight(2, 3), Some(3.0));
        assert_eq!(adj.edge_weight(3, 2), None);
    }

    #[test]
    fn weight_sum_accumulates() {
        let adj = sample();
        assert_eq!(adj.weight_sum(0), 3.0);
        assert_eq!(adj.weight_sum(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_rejects_out_of_range() {
        Adjacency::from_edges(2, &[Edge::unweighted(0, 5)]);
    }

    #[test]
    fn rebuild_replaces_only_changed_vertices() {
        let adj = sample();
        let mut changed = HashMap::new();
        changed.insert(0, vec![(3, 9.0)]);
        changed.insert(1, vec![(0, 1.0), (2, 1.0)]);
        let next = adj.rebuild_with(4, &changed);
        assert_eq!(next.neighbors(0), &[3]);
        assert_eq!(next.weights(0), &[9.0]);
        assert_eq!(next.neighbors(1), &[0, 2]);
        assert_eq!(next.neighbors(2), &[3]);
        assert_eq!(next.neighbors(3), &[0]);
        assert_eq!(next.num_edges(), 5);
    }

    #[test]
    fn rebuild_can_grow_vertex_space() {
        let adj = sample();
        let mut changed = HashMap::new();
        changed.insert(5, vec![(0, 1.0)]);
        let next = adj.rebuild_with(6, &changed);
        assert_eq!(next.num_vertices(), 6);
        assert_eq!(next.neighbors(5), &[0]);
        assert_eq!(next.degree(4), 0);
    }

    #[test]
    fn to_edges_round_trips() {
        let adj = sample();
        let edges = adj.to_edges();
        let rebuilt = Adjacency::from_edges(4, &edges);
        assert_eq!(adj, rebuilt);
    }

    #[test]
    fn empty_adjacency_has_no_edges() {
        let adj = Adjacency::empty(3);
        assert_eq!(adj.num_vertices(), 3);
        assert_eq!(adj.num_edges(), 0);
        assert_eq!(adj.degree(2), 0);
    }
}
