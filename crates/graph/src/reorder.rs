//! Vertex reordering for traversal locality.
//!
//! Iteration-heavy engines are memory-bound; relabeling vertices so that
//! frequently co-accessed ones share cache lines is a standard
//! preprocessing step (Ligra-family systems ship degree- and BFS-based
//! orderings). The orderings here permute a snapshot *and* provide the
//! permutation, so callers can map results back to original ids.

use std::collections::VecDeque;

use crate::snapshot::GraphSnapshot;
use crate::types::{Edge, VertexId};

/// A vertex relabeling: `perm[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<VertexId>,
    inverse: Vec<VertexId>,
}

impl Permutation {
    /// Builds from a forward map (`forward[old] = new`); must be a
    /// bijection on `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `forward` is not a permutation.
    pub fn new(forward: Vec<VertexId>) -> Self {
        let n = forward.len();
        let mut inverse = vec![VertexId::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!((new as usize) < n, "target {new} out of range");
            assert!(
                inverse[new as usize] == VertexId::MAX,
                "duplicate target {new}"
            );
            inverse[new as usize] = old as VertexId;
        }
        Self { forward, inverse }
    }

    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self::new((0..n as VertexId).collect())
    }

    /// New id of an old vertex.
    #[inline]
    pub fn apply(&self, old: VertexId) -> VertexId {
        self.forward[old as usize]
    }

    /// Old id of a new vertex.
    #[inline]
    pub fn invert(&self, new: VertexId) -> VertexId {
        self.inverse[new as usize]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Permutes a result vector from relabeled ids back to original ids:
    /// `out[old] = values[perm(old)]`.
    pub fn unpermute<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        self.forward
            .iter()
            .map(|&new| values[new as usize].clone())
            .collect()
    }
}

/// Relabels a snapshot, returning the permuted graph.
pub fn relabel(g: &GraphSnapshot, perm: &Permutation) -> GraphSnapshot {
    assert_eq!(g.num_vertices(), perm.len());
    let edges: Vec<Edge> = g
        .edges()
        .into_iter()
        .map(|e| Edge::new(perm.apply(e.src), perm.apply(e.dst), e.weight))
        .collect();
    GraphSnapshot::from_edges(g.num_vertices(), &edges)
}

/// Degree ordering: highest-degree vertices first. Hubs — touched by
/// nearly every frontier — end up sharing cache lines.
pub fn by_degree(g: &GraphSnapshot) -> Permutation {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
    let mut forward = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        forward[old as usize] = new as VertexId;
    }
    Permutation::new(forward)
}

/// BFS (Cuthill–McKee-style) ordering from `start`: neighbors get nearby
/// ids, so frontier expansion walks nearly sequential memory. Unreached
/// vertices are appended in id order.
pub fn by_bfs(g: &GraphSnapshot, start: VertexId) -> Permutation {
    let n = g.num_vertices();
    let mut forward = vec![VertexId::MAX; n];
    let mut next_id: VertexId = 0;
    let mut queue = VecDeque::new();
    let mut visit = |v: VertexId, forward: &mut Vec<VertexId>, queue: &mut VecDeque<VertexId>| {
        if forward[v as usize] == VertexId::MAX {
            forward[v as usize] = next_id;
            next_id += 1;
            queue.push_back(v);
        }
    };
    visit(start, &mut forward, &mut queue);
    loop {
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                visit(v, &mut forward, &mut queue);
            }
        }
        // Seed the next unreached component.
        match forward.iter().position(|&x| x == VertexId::MAX) {
            Some(v) => visit(v as VertexId, &mut forward, &mut queue),
            None => break,
        }
    }
    Permutation::new(forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> GraphSnapshot {
        GraphBuilder::new(5)
            .add_edge(3, 0, 1.0)
            .add_edge(3, 1, 1.0)
            .add_edge(3, 2, 1.0)
            .add_edge(0, 3, 1.0)
            .add_edge(1, 2, 1.0)
            .build()
    }

    #[test]
    fn permutation_round_trips() {
        let p = Permutation::new(vec![2, 0, 1]);
        for old in 0..3 {
            assert_eq!(p.invert(p.apply(old)), old);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn non_bijection_is_rejected() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = sample();
        let p = by_degree(&g);
        let h = relabel(&g, &p);
        assert_eq!(h.num_edges(), g.num_edges());
        assert!(h.check_consistency());
        // Every original edge exists under the new labels.
        for e in g.edges() {
            assert!(h.has_edge(p.apply(e.src), p.apply(e.dst)));
        }
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = sample();
        let p = by_degree(&g);
        // Vertex 3 has total degree 4 — the hub.
        assert_eq!(p.apply(3), 0);
    }

    #[test]
    fn bfs_order_starts_at_start_and_covers_all() {
        let g = sample();
        let p = by_bfs(&g, 3);
        assert_eq!(p.apply(3), 0);
        let mut ids: Vec<VertexId> = (0..5).map(|v| p.apply(v)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_order_covers_disconnected_components() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let p = by_bfs(&g, 0);
        let mut ids: Vec<VertexId> = (0..4).map(|v| p.apply(v)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unpermute_maps_results_back() {
        let g = sample();
        let p = by_degree(&g);
        let h = relabel(&g, &p);
        // Compute out-degrees on the relabeled graph, map back, compare.
        let relabeled_degrees: Vec<usize> = (0..5).map(|v| h.out_degree(v as VertexId)).collect();
        let back = p.unpermute(&relabeled_degrees);
        let original: Vec<usize> = (0..5).map(|v| g.out_degree(v as VertexId)).collect();
        assert_eq!(back, original);
    }
}
