//! Incremental construction of graph snapshots.

use crate::snapshot::GraphSnapshot;
use crate::types::{Edge, VertexId, Weight};

/// Fluent builder for [`GraphSnapshot`].
///
/// # Examples
///
/// ```
/// use graphbolt_graph::GraphBuilder;
/// let g = GraphBuilder::new(3)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 0.5)
///     .build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    symmetric: bool,
}

impl GraphBuilder {
    /// Starts a builder with a fixed vertex-id space `0..n`. The space
    /// grows automatically if an added edge references a larger id.
    pub fn new(n: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::new(),
            symmetric: false,
        }
    }

    /// When set, every added edge also inserts its reverse, producing a
    /// symmetric (undirected-equivalent) graph — Triangle Counting and
    /// Belief Propagation conventionally run on symmetrized inputs.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Adds a weighted directed edge.
    pub fn add_edge(mut self, src: VertexId, dst: VertexId, weight: Weight) -> Self {
        self.push(Edge::new(src, dst, weight));
        self
    }

    /// Adds all edges from an iterator.
    pub fn extend<I: IntoIterator<Item = Edge>>(mut self, iter: I) -> Self {
        for e in iter {
            self.push(e);
        }
        self
    }

    fn push(&mut self, e: Edge) {
        self.num_vertices = self
            .num_vertices
            .max(e.src as usize + 1)
            .max(e.dst as usize + 1);
        self.edges.push(e);
        if self.symmetric && e.src != e.dst {
            self.edges.push(e.reversed());
        }
    }

    /// Number of edges currently queued (after symmetrization).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges are queued.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into an immutable snapshot; duplicate `(src, dst)` pairs
    /// collapse, keeping the last weight.
    pub fn build(self) -> GraphSnapshot {
        GraphSnapshot::from_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_vertex_space() {
        let g = GraphBuilder::new(1).add_edge(0, 7, 1.0).build();
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn symmetric_builder_mirrors_edges() {
        let g = GraphBuilder::new(3)
            .symmetric(true)
            .add_edge(0, 1, 2.0)
            .build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
    }

    #[test]
    fn symmetric_builder_skips_self_loop_mirror() {
        let g = GraphBuilder::new(2)
            .symmetric(true)
            .add_edge(1, 1, 1.0)
            .build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn extend_accepts_iterators() {
        let g = GraphBuilder::new(0)
            .extend((0..5).map(|i| Edge::unweighted(i, i + 1)))
            .build();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.num_vertices(), 6);
    }
}
