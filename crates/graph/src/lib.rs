//! Streaming graph substrate for GraphBolt.
//!
//! This crate provides the mutable-graph foundation that the GraphBolt
//! engine (EuroSys'19) computes over:
//!
//! * [`GraphSnapshot`] — an immutable, dual-indexed (CSR + CSC) snapshot of
//!   a directed weighted graph, optimized for both push-style (out-edge)
//!   and pull-style (in-edge) traversal,
//! * [`MutationBatch`] / [`GraphSnapshot::apply`] — batched edge/vertex
//!   insertions and deletions that produce the next snapshot using the
//!   two-pass adjustment scheme described in §4.1 of the paper,
//! * [`generators`] — R-MAT, Erdős–Rényi and Chung–Lu graph generators
//!   used as stand-ins for the paper's web/social graphs,
//! * [`stream`] — the evaluation-methodology mutation-stream driver
//!   (load 50% of edges, stream the rest as additions mixed with
//!   deletions; Hi/Lo degree-targeted workloads),
//! * [`io`] — plain-text and binary edge-list formats.
//!
//! # Examples
//!
//! ```
//! use graphbolt_graph::{GraphBuilder, Edge, MutationBatch};
//!
//! let g = GraphBuilder::new(4)
//!     .add_edge(0, 1, 1.0)
//!     .add_edge(1, 2, 1.0)
//!     .build();
//! assert_eq!(g.num_edges(), 2);
//!
//! let mut batch = MutationBatch::new();
//! batch.add(Edge::new(2, 3, 1.0));
//! batch.delete(Edge::new(0, 1, 1.0));
//! let g2 = g.apply(&batch).unwrap();
//! assert_eq!(g2.num_edges(), 2);
//! assert_eq!(g2.out_degree(0), 0);
//! ```

pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod generators;
pub mod io;
pub mod mutation;
pub mod reorder;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::Adjacency;
pub use dynamic::DynamicGraph;
pub use mutation::{MutationBatch, MutationError};
pub use reorder::Permutation;
pub use snapshot::GraphSnapshot;
pub use stats::{approximate_diameter, degree_histogram, stats, GraphStats};
pub use stream::{MutationStream, StreamConfig, WorkloadBias};
pub use types::{Edge, VertexId, Weight};
