//! Batched graph mutations.

use std::collections::HashSet;

use crate::snapshot::GraphSnapshot;
use crate::types::{Edge, VertexId};

/// Error produced when a mutation batch conflicts with the snapshot it is
/// applied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The batch adds an edge that already exists in the snapshot (and is
    /// not simultaneously deleted — delete+add of the same endpoints is a
    /// *reweight* and is allowed).
    DuplicateAddition(Edge),
    /// The batch deletes an edge that does not exist in the snapshot.
    MissingDeletion(Edge),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateAddition(e) => {
                write!(f, "edge ({}, {}) already exists", e.src, e.dst)
            }
            Self::MissingDeletion(e) => {
                write!(f, "edge ({}, {}) does not exist", e.src, e.dst)
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// A batch of edge insertions and deletions, applied atomically between
/// iterations (§2.1: "updates are batched into ΔG when computations are
/// being performed during an iteration").
///
/// Vertex additions are implicit: adding an edge whose endpoint exceeds the
/// current vertex count grows the id space. Vertex deletion is expressed by
/// deleting all incident edges ([`MutationBatch::delete_vertex_edges`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    additions: Vec<Edge>,
    deletions: Vec<Edge>,
}

impl MutationBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from explicit addition and deletion lists.
    pub fn from_parts(additions: Vec<Edge>, deletions: Vec<Edge>) -> Self {
        Self {
            additions,
            deletions,
        }
    }

    /// Queues an edge insertion.
    pub fn add(&mut self, e: Edge) -> &mut Self {
        self.additions.push(e);
        self
    }

    /// Queues an edge deletion (weight on the edge is ignored).
    pub fn delete(&mut self, e: Edge) -> &mut Self {
        self.deletions.push(e);
        self
    }

    /// Queues a weight change of an existing edge, expressed as the
    /// delete-then-add pair the engine's refinement understands (the old
    /// contribution is retracted in the old structural context, the new
    /// one folded in under the new weight).
    ///
    /// # Panics
    ///
    /// Panics if the edge is absent from `g` — reweighting needs the old
    /// weight to retract.
    pub fn reweight(
        &mut self,
        g: &GraphSnapshot,
        src: VertexId,
        dst: VertexId,
        new_weight: f64,
    ) -> &mut Self {
        self.try_reweight(g, src, dst, new_weight)
            .unwrap_or_else(|e| panic!("cannot reweight absent edge: {e}"))
    }

    /// Fallible [`MutationBatch::reweight`]: reports the absent edge as a
    /// [`MutationError::MissingDeletion`] instead of panicking, for
    /// callers fed by untrusted mutation streams.
    ///
    /// # Errors
    ///
    /// [`MutationError::MissingDeletion`] when `(src, dst)` is not in `g`.
    pub fn try_reweight(
        &mut self,
        g: &GraphSnapshot,
        src: VertexId,
        dst: VertexId,
        new_weight: f64,
    ) -> Result<&mut Self, MutationError> {
        let old = g
            .edge_weight(src, dst)
            .ok_or(MutationError::MissingDeletion(Edge::new(
                src, dst, new_weight,
            )))?;
        self.delete(Edge::new(src, dst, old));
        self.add(Edge::new(src, dst, new_weight));
        Ok(self)
    }

    /// Queues deletion of every edge incident to `v` in `g`, which models
    /// vertex removal.
    pub fn delete_vertex_edges(&mut self, g: &GraphSnapshot, v: VertexId) -> &mut Self {
        for (t, w) in g.out_edges(v) {
            self.delete(Edge::new(v, t, w));
        }
        for (s, w) in g.in_edges(v) {
            if s != v {
                self.delete(Edge::new(s, v, w));
            }
        }
        self
    }

    /// Queued insertions.
    pub fn additions(&self) -> &[Edge] {
        &self.additions
    }

    /// Queued deletions.
    pub fn deletions(&self) -> &[Edge] {
        &self.deletions
    }

    /// Total number of queued mutations.
    pub fn len(&self) -> usize {
        self.additions.len() + self.deletions.len()
    }

    /// Returns `true` if no mutations are queued.
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty() && self.deletions.is_empty()
    }

    /// Largest vertex id referenced by the batch.
    pub fn max_vertex_id(&self) -> Option<VertexId> {
        self.additions
            .iter()
            .chain(self.deletions.iter())
            .map(|e| e.src.max(e.dst))
            .max()
    }

    /// Checks the batch against a snapshot without applying it.
    ///
    /// # Errors
    ///
    /// See [`MutationError`].
    pub fn validate(&self, g: &GraphSnapshot) -> Result<(), MutationError> {
        let mut seen_del = HashSet::with_capacity(self.deletions.len());
        for e in &self.deletions {
            if !seen_del.insert(e.endpoints()) {
                return Err(MutationError::MissingDeletion(*e));
            }
            if (e.src as usize) >= g.num_vertices() || !g.has_edge(e.src, e.dst) {
                return Err(MutationError::MissingDeletion(*e));
            }
        }
        let mut seen_add = HashSet::with_capacity(self.additions.len());
        for e in &self.additions {
            if !seen_add.insert(e.endpoints()) {
                return Err(MutationError::DuplicateAddition(*e));
            }
            // Adding a present edge is a conflict unless the same batch
            // deletes it first (reweight semantics).
            if (e.src as usize) < g.num_vertices()
                && g.has_edge(e.src, e.dst)
                && !seen_del.contains(&e.endpoints())
            {
                return Err(MutationError::DuplicateAddition(*e));
            }
        }
        Ok(())
    }

    /// Drops mutations that would conflict with `g` (duplicate additions,
    /// deletions of absent edges, add+delete pairs), returning a batch that
    /// is guaranteed to validate. Raw mutation streams sampled from a
    /// changing graph use this to stay consistent.
    pub fn normalize_against(&self, g: &GraphSnapshot) -> MutationBatch {
        let mut seen_del = HashSet::new();
        let deletions: Vec<Edge> = self
            .deletions
            .iter()
            .filter(|e| {
                seen_del.insert(e.endpoints())
                    && (e.src as usize) < g.num_vertices()
                    && g.has_edge(e.src, e.dst)
            })
            .copied()
            .collect();
        let mut seen = HashSet::new();
        let additions: Vec<Edge> = self
            .additions
            .iter()
            .filter(|e| {
                seen.insert(e.endpoints())
                    && ((e.src as usize) >= g.num_vertices()
                        || !g.has_edge(e.src, e.dst)
                        || seen_del.contains(&e.endpoints()))
            })
            .copied()
            .collect();
        MutationBatch {
            additions,
            deletions,
        }
    }

    /// Splits this batch into `chunks` sub-batches that, applied in order,
    /// are equivalent to applying the whole batch (used by the single-edge
    /// streaming experiments, Fig. 8b). Reweight pairs (a deletion and an
    /// addition of the same endpoints) stay in the same sub-batch —
    /// tearing them apart would make the addition half conflict with the
    /// still-present edge.
    pub fn split(&self, chunks: usize) -> Vec<MutationBatch> {
        assert!(chunks > 0);
        let mut out = vec![MutationBatch::new(); chunks];
        let mut addition_chunk = HashSet::new();
        for (i, e) in self.additions.iter().enumerate() {
            out[i % chunks].additions.push(*e);
            addition_chunk.insert((e.endpoints(), i % chunks));
        }
        let addition_chunk_of = |e: &Edge| {
            (0..chunks).find(|&c| addition_chunk.contains(&(e.endpoints(), c)))
        };
        for (i, e) in self.deletions.iter().enumerate() {
            let chunk = addition_chunk_of(e).unwrap_or(i % chunks);
            out[chunk].deletions.push(*e);
        }
        out.retain(|b| !b.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> GraphSnapshot {
        GraphSnapshot::from_edges(3, &[Edge::unweighted(0, 1), Edge::unweighted(1, 2)])
    }

    #[test]
    fn validate_accepts_consistent_batch() {
        let g = line();
        let mut b = MutationBatch::new();
        b.add(Edge::unweighted(2, 0)).delete(Edge::unweighted(0, 1));
        assert!(b.validate(&g).is_ok());
    }

    #[test]
    fn validate_allows_reweight_pairs() {
        let g = line();
        let mut b = MutationBatch::new();
        b.reweight(&g, 0, 1, 2.5);
        assert!(b.validate(&g).is_ok());
        let g2 = g.apply(&b).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(2.5));
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn try_reweight_reports_absent_edge_instead_of_panicking() {
        let g = line();
        let mut b = MutationBatch::new();
        assert!(matches!(
            b.try_reweight(&g, 2, 0, 3.0),
            Err(MutationError::MissingDeletion(_))
        ));
        assert!(b.is_empty(), "failed reweight must not half-queue");
        b.try_reweight(&g, 0, 1, 2.5).unwrap();
        assert!(b.validate(&g).is_ok());
    }

    #[test]
    fn validate_rejects_add_then_delete_of_absent_edge() {
        let g = line();
        let mut b = MutationBatch::new();
        b.add(Edge::unweighted(2, 0)).delete(Edge::unweighted(2, 0));
        // The deletion refers to an edge absent from the snapshot.
        assert!(matches!(
            b.validate(&g),
            Err(MutationError::MissingDeletion(_))
        ));
    }

    #[test]
    #[should_panic(expected = "absent edge")]
    fn reweight_of_absent_edge_panics() {
        let g = line();
        MutationBatch::new().reweight(&g, 2, 0, 1.0);
    }

    #[test]
    fn validate_rejects_double_add_within_batch() {
        let g = line();
        let mut b = MutationBatch::new();
        b.add(Edge::unweighted(2, 0)).add(Edge::new(2, 0, 5.0));
        assert!(matches!(
            b.validate(&g),
            Err(MutationError::DuplicateAddition(_))
        ));
    }

    #[test]
    fn normalize_filters_conflicts() {
        let g = line();
        let mut b = MutationBatch::new();
        b.add(Edge::unweighted(0, 1)) // already present → dropped
            .add(Edge::unweighted(2, 0)) // fine
            .delete(Edge::unweighted(2, 1)) // absent → dropped
            .delete(Edge::unweighted(1, 2)); // fine
        let n = b.normalize_against(&g);
        assert_eq!(n.additions().len(), 1);
        assert_eq!(n.deletions().len(), 1);
        assert!(n.validate(&g).is_ok());
    }

    #[test]
    fn delete_vertex_edges_removes_all_incident() {
        let g = GraphSnapshot::from_edges(
            3,
            &[
                Edge::unweighted(0, 1),
                Edge::unweighted(1, 2),
                Edge::unweighted(2, 1),
            ],
        );
        let mut b = MutationBatch::new();
        b.delete_vertex_edges(&g, 1);
        assert_eq!(b.deletions().len(), 3);
        let g2 = g.apply(&b).unwrap();
        assert_eq!(g2.out_degree(1), 0);
        assert_eq!(g2.in_degree(1), 0);
    }

    #[test]
    fn split_preserves_all_mutations() {
        let mut b = MutationBatch::new();
        for i in 0..10 {
            b.add(Edge::unweighted(i, i + 1));
        }
        b.delete(Edge::unweighted(0, 5));
        let parts = b.split(3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn max_vertex_id_spans_both_lists() {
        let mut b = MutationBatch::new();
        b.add(Edge::unweighted(3, 9));
        b.delete(Edge::unweighted(12, 1));
        assert_eq!(b.max_vertex_id(), Some(12));
        assert_eq!(MutationBatch::new().max_vertex_id(), None);
    }
}

#[cfg(test)]
mod split_reweight_tests {
    use super::*;

    #[test]
    fn split_keeps_reweight_pairs_together() {
        let g = GraphSnapshot::from_edges(
            3,
            &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)],
        );
        let mut batch = MutationBatch::new();
        batch.delete(Edge::new(0, 1, 1.0));
        batch.reweight(&g, 1, 2, 5.0);
        // Sequential application of the chunks must stay valid regardless
        // of how indices landed.
        for chunks in 1..=4 {
            let mut cur = g.clone();
            for sub in batch.split(chunks) {
                cur = cur
                    .apply(&sub)
                    .expect("split sub-batches apply in order");
            }
            assert_eq!(cur.edge_weight(1, 2), Some(5.0), "chunks={chunks}");
            assert!(!cur.has_edge(0, 1));
        }
    }

    #[test]
    fn truncated_untrusted_counts_error_cleanly() {
        use crate::io;
        use bytes::Bytes;
        // GBLT header claiming 2^60 edges with no payload: must be a
        // Format error, not a panic.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GBLT");
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_be_bytes());
        assert!(matches!(
            io::from_binary(Bytes::from(buf)),
            Err(io::IoError::Format(_))
        ));
        // GBMS header claiming 2^31 batches in a 10-byte file.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GBMS");
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            io::batches_from_binary(Bytes::from(buf)),
            Err(io::IoError::Format(_))
        ));
    }
}
