//! STINGER-style dynamic adjacency — the §4.1 extension.
//!
//! The paper adjusts its CSR/CSC arrays with a two-pass rebuild and notes:
//! *"Faster dynamic graph data-structures like STINGER can be
//! incorporated to improve the time taken to adjust the graph
//! structure."* [`DynamicGraph`] is that option: per-vertex sorted edge
//! blocks mutated in place, so applying a batch costs
//! `O(Σ degree(touched))` instead of `O(|V| + |E|)`.
//!
//! The trade-off (measured by the `mutation` criterion bench): mutation
//! is orders of magnitude faster, but per-edge traversal loses the single
//! contiguous array layout, so iteration-heavy analytics prefer
//! [`GraphSnapshot`]. [`DynamicGraph::to_snapshot`]
//! converts when (re)entering compute-heavy phases — the same
//! ingest-then-compact split production systems use.

use crate::mutation::{MutationBatch, MutationError};
use crate::snapshot::GraphSnapshot;
use crate::types::{Edge, VertexId, Weight};

/// A mutable directed graph with in-place edge updates.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    /// Sorted `(target, weight)` out-edge blocks.
    out: Vec<Vec<(VertexId, Weight)>>,
    /// Sorted `(source, weight)` in-edge blocks.
    inc: Vec<Vec<(VertexId, Weight)>>,
    edges: usize,
}

impl DynamicGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Builds from an edge list (duplicates collapse to the last weight).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = Self::new(n);
        for e in edges {
            g.grow(e.src.max(e.dst) as usize + 1);
            g.upsert(*e);
        }
        g
    }

    /// Imports a snapshot.
    pub fn from_snapshot(s: &GraphSnapshot) -> Self {
        let n = s.num_vertices();
        let mut g = Self::new(n);
        for v in 0..n as VertexId {
            g.out[v as usize] = s.out_edges(v).collect();
            g.inc[v as usize] = s.in_edges(v).collect();
        }
        g.edges = s.num_edges();
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Grows the vertex space to at least `n`.
    pub fn grow(&mut self, n: usize) {
        if n > self.out.len() {
            self.out.resize(n, Vec::new());
            self.inc.resize(n, Vec::new());
        }
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v as usize].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inc[v as usize].len()
    }

    /// Sorted `(target, weight)` out-edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.out[v as usize]
    }

    /// Sorted `(source, weight)` in-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.inc[v as usize]
    }

    /// Returns `true` if `u → v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out
            .get(u as usize)
            .is_some_and(|block| block.binary_search_by_key(&v, |&(t, _)| t).is_ok())
    }

    /// Weight of `u → v`, if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let block = self.out.get(u as usize)?;
        block
            .binary_search_by_key(&v, |&(t, _)| t)
            .ok()
            .map(|i| block[i].1)
    }

    /// Inserts or updates `e` in place; returns `true` when the edge is
    /// new. `O(degree)` for the block shifts.
    pub fn upsert(&mut self, e: Edge) -> bool {
        self.grow(e.src.max(e.dst) as usize + 1);
        let out_block = &mut self.out[e.src as usize];
        let fresh = match out_block.binary_search_by_key(&e.dst, |&(t, _)| t) {
            Ok(i) => {
                out_block[i].1 = e.weight;
                false
            }
            Err(i) => {
                out_block.insert(i, (e.dst, e.weight));
                true
            }
        };
        let in_block = &mut self.inc[e.dst as usize];
        match in_block.binary_search_by_key(&e.src, |&(s, _)| s) {
            Ok(i) => in_block[i].1 = e.weight,
            Err(i) => in_block.insert(i, (e.src, e.weight)),
        }
        if fresh {
            self.edges += 1;
        }
        fresh
    }

    /// Removes `u → v` in place; returns `true` when it was present.
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(out_block) = self.out.get_mut(u as usize) else {
            return false;
        };
        let Ok(i) = out_block.binary_search_by_key(&v, |&(t, _)| t) else {
            return false;
        };
        out_block.remove(i);
        let in_block = &mut self.inc[v as usize];
        if let Ok(j) = in_block.binary_search_by_key(&u, |&(s, _)| s) {
            in_block.remove(j);
        }
        self.edges -= 1;
        true
    }

    /// Applies a mutation batch in place (deletions first, then
    /// additions — reweight pairs resolve correctly).
    ///
    /// # Errors
    ///
    /// Fails like [`GraphSnapshot::apply`]: deleting an absent edge or
    /// adding a present one (outside a reweight pair) is an error, and
    /// the graph is left unchanged in that case.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<(), MutationError> {
        // Validate against current state first so failures don't leave
        // the structure half-mutated.
        self.validate(batch)?;
        for e in batch.deletions() {
            let removed = self.remove(e.src, e.dst);
            debug_assert!(removed);
        }
        for e in batch.additions() {
            let fresh = self.upsert(*e);
            debug_assert!(fresh);
        }
        Ok(())
    }

    fn validate(&self, batch: &MutationBatch) -> Result<(), MutationError> {
        let mut deleted = std::collections::HashSet::new();
        for e in batch.deletions() {
            if !deleted.insert(e.endpoints()) || !self.has_edge(e.src, e.dst) {
                return Err(MutationError::MissingDeletion(*e));
            }
        }
        let mut added = std::collections::HashSet::new();
        for e in batch.additions() {
            if !added.insert(e.endpoints())
                || (self.has_edge(e.src, e.dst) && !deleted.contains(&e.endpoints()))
            {
                return Err(MutationError::DuplicateAddition(*e));
            }
        }
        Ok(())
    }

    /// Materializes a compact snapshot for compute-heavy phases.
    pub fn to_snapshot(&self) -> GraphSnapshot {
        let mut edges = Vec::with_capacity(self.edges);
        for u in 0..self.num_vertices() as VertexId {
            for &(v, w) in self.out_edges(u) {
                edges.push(Edge::new(u, v, w));
            }
        }
        GraphSnapshot::from_edges(self.num_vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicGraph {
        DynamicGraph::from_edges(
            4,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(2, 3, 3.0),
            ],
        )
    }

    #[test]
    fn upsert_and_remove_maintain_both_directions() {
        let mut g = sample();
        assert!(g.upsert(Edge::new(3, 0, 4.0)));
        assert!(g.has_edge(3, 0));
        assert_eq!(g.in_edges(0), &[(3, 4.0)]);
        assert!(g.remove(3, 0));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn upsert_existing_updates_weight() {
        let mut g = sample();
        assert!(!g.upsert(Edge::new(0, 1, 9.0)));
        assert_eq!(g.edge_weight(0, 1), Some(9.0));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut g = sample();
        assert!(!g.remove(1, 0));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn apply_batch_matches_snapshot_semantics() {
        let s = GraphSnapshot::from_edges(
            4,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(2, 3, 3.0),
            ],
        );
        let mut dynamic = DynamicGraph::from_snapshot(&s);
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 0, 1.0)).delete(Edge::new(0, 1, 1.0));
        dynamic.apply(&batch).unwrap();
        let expected = s.apply(&batch).unwrap();
        assert_eq!(dynamic.to_snapshot(), expected);
    }

    #[test]
    fn apply_rejects_conflicts_atomically() {
        let mut g = sample();
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 0, 1.0)); // fine
        batch.delete(Edge::new(1, 0, 1.0)); // absent
        assert!(g.apply(&batch).is_err());
        // Nothing applied.
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn reweight_pair_applies_in_place() {
        let mut g = sample();
        let snapshot = g.to_snapshot();
        let mut batch = MutationBatch::new();
        batch.reweight(&snapshot, 0, 2, 7.5);
        g.apply(&batch).unwrap();
        assert_eq!(g.edge_weight(0, 2), Some(7.5));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn grows_vertex_space_on_demand() {
        let mut g = DynamicGraph::new(2);
        g.upsert(Edge::new(5, 1, 1.0));
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(5, 1));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]
        /// DynamicGraph and GraphSnapshot agree after arbitrary batch
        /// sequences.
        #[test]
        fn dynamic_tracks_snapshot(seed in 0u64..400) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(3..15usize);
            let mut snapshot = GraphSnapshot::empty(n);
            let mut dynamic = DynamicGraph::new(n);
            for _ in 0..6 {
                let mut batch = MutationBatch::new();
                for _ in 0..rng.gen_range(1..5) {
                    let u = rng.gen_range(0..n) as VertexId;
                    let v = rng.gen_range(0..n) as VertexId;
                    if u == v { continue; }
                    if snapshot.has_edge(u, v) {
                        batch.delete(Edge::new(u, v, snapshot.edge_weight(u, v).unwrap()));
                    } else {
                        batch.add(Edge::new(u, v, rng.gen_range(0.1..2.0)));
                    }
                }
                let batch = batch.normalize_against(&snapshot);
                if batch.is_empty() { continue; }
                snapshot = snapshot.apply(&batch).unwrap();
                dynamic.apply(&batch).unwrap();
                proptest::prop_assert_eq!(dynamic.to_snapshot(), snapshot.clone());
                proptest::prop_assert_eq!(dynamic.num_edges(), snapshot.num_edges());
            }
        }
    }
}
