//! Edge-list I/O: SNAP-style text and a compact binary format.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::types::{Edge, VertexId};

/// Magic bytes identifying the binary edge-list format.
const MAGIC: &[u8; 4] = b"GBLT";
/// Binary format version.
const VERSION: u16 = 1;

/// Error produced by graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line of text could not be parsed as an edge.
    Parse { line: usize, content: String },
    /// Binary payload is malformed.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, content } => {
                write!(f, "cannot parse edge at line {line}: {content:?}")
            }
            Self::Format(msg) => write!(f, "malformed binary graph: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses a SNAP-style text edge list: one `src dst [weight]` triple per
/// line, whitespace separated; `#`-prefixed lines are comments. A missing
/// weight defaults to `1.0`.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with the offending line number on malformed
/// input.
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>, IoError> {
    let mut edges = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_err = || IoError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let src: VertexId = it
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let dst: VertexId = it
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let weight = match it.next() {
            Some(w) => w.parse().map_err(|_| parse_err())?,
            None => 1.0,
        };
        edges.push(Edge::new(src, dst, weight));
    }
    Ok(edges)
}

/// Reads a text edge list from `path`. See [`parse_edge_list`].
///
/// # Errors
///
/// Propagates file-open failures and parse errors.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<Vec<Edge>, IoError> {
    parse_edge_list(File::open(path)?)
}

/// Writes a text edge list (`src dst weight` per line).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<P: AsRef<Path>>(path: P, edges: &[Edge]) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for e in edges {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes edges into the compact binary format:
/// `GBLT | u16 version | u64 count | count × (u32 src, u32 dst, f64 w)`.
pub fn to_binary(edges: &[Edge]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + edges.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(edges.len() as u64);
    for e in edges {
        buf.put_u32(e.src);
        buf.put_u32(e.dst);
        buf.put_f64(e.weight);
    }
    buf.freeze()
}

/// Deserializes edges written by [`to_binary`].
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic, version, or truncation.
pub fn from_binary(mut data: Bytes) -> Result<Vec<Edge>, IoError> {
    if data.remaining() < 14 {
        return Err(IoError::Format("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format(format!("bad magic {magic:?}")));
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let count = data.get_u64() as usize;
    // `count` is untrusted input: checked arithmetic (a crafted huge
    // count must surface as a Format error, not an overflow panic or a
    // capacity-overflow abort).
    let want = count
        .checked_mul(16)
        .ok_or_else(|| IoError::Format(format!("implausible edge count {count}")))?;
    if data.remaining() < want {
        return Err(IoError::Format(format!(
            "payload truncated: want {want} bytes, have {}",
            data.remaining()
        )));
    }
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        let src = data.get_u32();
        let dst = data.get_u32();
        let weight = data.get_f64();
        edges.push(Edge::new(src, dst, weight));
    }
    Ok(edges)
}

/// Writes the binary format to `path`.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_binary<P: AsRef<Path>>(path: P, edges: &[Edge]) -> Result<(), IoError> {
    let bytes = to_binary(edges);
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Reads the binary format from `path`.
///
/// # Errors
///
/// Propagates read failures and format errors.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<Vec<Edge>, IoError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    from_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_edge_list_handles_comments_and_weights() {
        let text = "# comment\n0 1\n1 2 0.5\n\n 2 0 2.5 \n";
        let edges = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::unweighted(0, 1));
        assert_eq!(edges[1].weight, 0.5);
        assert_eq!(edges[2].weight, 2.5);
    }

    #[test]
    fn parse_edge_list_reports_line_numbers() {
        let text = "0 1\nnot an edge\n";
        match parse_edge_list(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn binary_round_trip() {
        let edges = vec![Edge::new(0, 1, 0.25), Edge::new(7, 3, -4.0)];
        let bytes = to_binary(&edges);
        let back = from_binary(bytes).unwrap();
        assert_eq!(edges, back);
        assert_eq!(back[1].weight, -4.0);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = from_binary(Bytes::from_static(
            b"NOPE\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00",
        ));
        assert!(matches!(err, Err(IoError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let edges = vec![Edge::new(0, 1, 1.0)];
        let bytes = to_binary(&edges);
        let cut = bytes.slice(0..bytes.len() - 4);
        assert!(matches!(from_binary(cut), Err(IoError::Format(_))));
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("graphbolt-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = vec![Edge::new(1, 2, 0.5), Edge::new(2, 3, 1.5)];

        let text_path = dir.join("edges.txt");
        write_edge_list(&text_path, &edges).unwrap();
        assert_eq!(read_edge_list(&text_path).unwrap(), edges);

        let bin_path = dir.join("edges.bin");
        write_binary(&bin_path, &edges).unwrap();
        assert_eq!(read_binary(&bin_path).unwrap(), edges);
    }
}

/// Magic bytes identifying a serialized mutation stream.
const STREAM_MAGIC: &[u8; 4] = b"GBMS";

/// Serializes a sequence of mutation batches:
/// `GBMS | u16 version | u32 batch-count | batches…` where each batch is
/// `u32 add-count | u32 del-count | edges…` in the binary edge layout.
/// Recording the exact batch boundaries makes streaming experiments
/// replayable across runs and machines.
pub fn batches_to_binary(batches: &[crate::MutationBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(STREAM_MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(batches.len() as u32);
    fn put_edges(buf: &mut BytesMut, edges: &[Edge]) {
        for e in edges {
            buf.put_u32(e.src);
            buf.put_u32(e.dst);
            buf.put_f64(e.weight);
        }
    }
    for b in batches {
        buf.put_u32(b.additions().len() as u32);
        buf.put_u32(b.deletions().len() as u32);
        put_edges(&mut buf, b.additions());
        put_edges(&mut buf, b.deletions());
    }
    buf.freeze()
}

/// Deserializes batches written by [`batches_to_binary`].
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic, version, or truncation.
pub fn batches_from_binary(mut data: Bytes) -> Result<Vec<crate::MutationBatch>, IoError> {
    if data.remaining() < 10 {
        return Err(IoError::Format("stream header truncated".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != STREAM_MAGIC {
        return Err(IoError::Format(format!("bad stream magic {magic:?}")));
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let count = data.get_u32() as usize;
    // Each batch needs at least its 8-byte header: bound the allocation
    // by what the payload could actually hold.
    if data.remaining() < count.saturating_mul(8) {
        return Err(IoError::Format(format!(
            "payload too small for {count} batches"
        )));
    }
    let mut batches = Vec::with_capacity(count);
    let read_edges = |data: &mut Bytes, k: usize| -> Result<Vec<Edge>, IoError> {
        let want = k
            .checked_mul(16)
            .ok_or_else(|| IoError::Format(format!("implausible edge count {k}")))?;
        if data.remaining() < want {
            return Err(IoError::Format("stream payload truncated".into()));
        }
        Ok((0..k)
            .map(|_| {
                let src = data.get_u32();
                let dst = data.get_u32();
                let w = data.get_f64();
                Edge::new(src, dst, w)
            })
            .collect())
    };
    for _ in 0..count {
        if data.remaining() < 8 {
            return Err(IoError::Format("batch header truncated".into()));
        }
        let adds = data.get_u32() as usize;
        let dels = data.get_u32() as usize;
        let additions = read_edges(&mut data, adds)?;
        let deletions = read_edges(&mut data, dels)?;
        batches.push(crate::MutationBatch::from_parts(additions, deletions));
    }
    Ok(batches)
}

/// Writes a mutation stream to `path`.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_batches<P: AsRef<Path>>(
    path: P,
    batches: &[crate::MutationBatch],
) -> Result<(), IoError> {
    let bytes = batches_to_binary(batches);
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Reads a mutation stream from `path`.
///
/// # Errors
///
/// Propagates read failures and format errors.
pub fn read_batches<P: AsRef<Path>>(path: P) -> Result<Vec<crate::MutationBatch>, IoError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    batches_from_binary(Bytes::from(data))
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::MutationBatch;

    fn sample_batches() -> Vec<MutationBatch> {
        let mut b1 = MutationBatch::new();
        b1.add(Edge::new(0, 1, 0.5)).delete(Edge::new(2, 3, 1.0));
        let mut b2 = MutationBatch::new();
        b2.add(Edge::new(4, 5, 2.0));
        vec![b1, b2, MutationBatch::new()]
    }

    #[test]
    fn batch_stream_round_trips() {
        let batches = sample_batches();
        let bytes = batches_to_binary(&batches);
        let back = batches_from_binary(bytes).unwrap();
        assert_eq!(batches, back);
    }

    #[test]
    fn batch_stream_rejects_bad_magic() {
        let err = batches_from_binary(Bytes::from_static(b"XXXX\x00\x01\x00\x00\x00\x00"));
        assert!(matches!(err, Err(IoError::Format(_))));
    }

    #[test]
    fn batch_stream_rejects_truncation() {
        let bytes = batches_to_binary(&sample_batches());
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(batches_from_binary(cut), Err(IoError::Format(_))));
    }

    #[test]
    fn batch_stream_file_round_trips() {
        let dir = std::env::temp_dir().join("graphbolt-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.gbms");
        let batches = sample_batches();
        write_batches(&path, &batches).unwrap();
        assert_eq!(read_batches(&path).unwrap(), batches);
    }
}
