//! Immutable graph snapshots with dual CSR/CSC indexing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::csr::Adjacency;
use crate::mutation::{MutationBatch, MutationError};
use crate::types::{Edge, VertexId, Weight};

/// An immutable snapshot of a directed weighted graph.
///
/// The snapshot keeps both a source-indexed (CSR, out-edges) and a
/// destination-indexed (CSC, in-edges) view of the same edge set. Push
/// traversal reads the CSR; pull traversal and GraphBolt's re-evaluation of
/// non-decomposable aggregations read the CSC (§3.3, §4.2 of the paper).
///
/// Snapshots are cheap to share (`Arc` internally is not required — the
/// engine clones `Arc<GraphSnapshot>`); applying a [`MutationBatch`]
/// produces a *new* snapshot, leaving the old one readable so refinement
/// can evaluate "old graph" contributions while the mutated graph is live.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    out: Adjacency,
    inc: Adjacency,
    /// Monotonically increasing snapshot version, starting at 0.
    version: u64,
}

impl PartialEq for GraphSnapshot {
    /// Structural equality: two snapshots are equal when they describe
    /// the same edge set, regardless of how many mutation batches
    /// produced them (the version counter is provenance, not structure).
    fn eq(&self, other: &Self) -> bool {
        self.out == other.out && self.inc == other.inc
    }
}

impl GraphSnapshot {
    /// Builds a snapshot from an edge list over `n` vertices.
    ///
    /// Duplicate `(src, dst)` pairs are collapsed, keeping the last weight
    /// seen — the substrate models simple directed graphs, matching the
    /// paper's inputs.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut dedup: HashMap<(VertexId, VertexId), Weight> = HashMap::with_capacity(edges.len());
        for e in edges {
            dedup.insert((e.src, e.dst), e.weight);
        }
        let unique: Vec<Edge> = dedup
            .into_iter()
            .map(|((s, d), w)| Edge::new(s, d, w))
            .collect();
        let out = Adjacency::from_edges(n, &unique);
        let reversed: Vec<Edge> = unique.iter().map(|e| e.reversed()).collect();
        let inc = Adjacency::from_edges(n, &reversed);
        Self {
            out,
            inc,
            version: 0,
        }
    }

    /// Creates an empty graph over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            out: Adjacency::empty(n),
            inc: Adjacency::empty(n),
            version: 0,
        }
    }

    pub(crate) fn from_parts(out: Adjacency, inc: Adjacency, version: u64) -> Self {
        debug_assert_eq!(out.num_edges(), inc.num_edges());
        debug_assert_eq!(out.num_vertices(), inc.num_vertices());
        Self { out, inc, version }
    }

    /// Number of vertices (fixed id space `0..n`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Snapshot version: 0 for the initial build, incremented by each
    /// applied mutation batch.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inc.degree(v)
    }

    /// Sorted out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Sorted in-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inc.neighbors(v)
    }

    /// `(out-neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.out.edges(v)
    }

    /// `(in-neighbor, weight)` pairs of `v` — the weight is that of the
    /// original `u → v` edge.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.inc.edges(v)
    }

    /// Returns `true` if the directed edge `u → v` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out.has_edge(u, v)
    }

    /// Weight of `u → v`, if present.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.out.edge_weight(u, v)
    }

    /// Sum of in-edge weights of `v` (CoEM-style destination
    /// normalization).
    #[inline]
    pub fn in_weight_sum(&self, v: VertexId) -> Weight {
        self.inc.weight_sum(v)
    }

    /// The out-edge (CSR) index.
    #[inline]
    pub fn csr(&self) -> &Adjacency {
        &self.out
    }

    /// The in-edge (CSC) index.
    #[inline]
    pub fn csc(&self) -> &Adjacency {
        &self.inc
    }

    /// All edges in source-major order.
    pub fn edges(&self) -> Vec<Edge> {
        self.out.to_edges()
    }

    /// Applies a mutation batch, producing the next snapshot.
    ///
    /// Additions of already-present edges and deletions of absent edges are
    /// rejected with [`MutationError`] so that dependency refinement never
    /// repropagates a contribution twice or retracts one that was never
    /// made (§4.2 "spurious updates"). Use
    /// [`MutationBatch::normalize_against`] to pre-filter a raw stream.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError::DuplicateAddition`] /
    /// [`MutationError::MissingDeletion`] on conflicting mutations.
    /// A delete+add pair on the same endpoints is a *reweight* and is
    /// accepted.
    pub fn apply(&self, batch: &MutationBatch) -> Result<GraphSnapshot, MutationError> {
        batch.validate(self)?;
        let new_n = self
            .num_vertices()
            .max(batch.max_vertex_id().map_or(0, |m| m as usize + 1));

        // Pass 1: group mutations by source (CSR) and destination (CSC).
        let mut out_changed: HashMap<VertexId, Vec<(VertexId, Weight)>> = HashMap::new();
        let mut in_changed: HashMap<VertexId, Vec<(VertexId, Weight)>> = HashMap::new();
        let mut touch_out = |v: VertexId, adj: &Adjacency| {
            out_changed.entry(v).or_insert_with(|| {
                if (v as usize) < adj.num_vertices() {
                    adj.edges(v).collect()
                } else {
                    Vec::new()
                }
            });
        };
        let mut touch_in = |v: VertexId, adj: &Adjacency| {
            in_changed.entry(v).or_insert_with(|| {
                if (v as usize) < adj.num_vertices() {
                    adj.edges(v).collect()
                } else {
                    Vec::new()
                }
            });
        };
        for e in batch.additions() {
            touch_out(e.src, &self.out);
            touch_in(e.dst, &self.inc);
        }
        for e in batch.deletions() {
            touch_out(e.src, &self.out);
            touch_in(e.dst, &self.inc);
        }
        for e in batch.deletions() {
            let slot = out_changed.get_mut(&e.src).expect("touched above");
            slot.retain(|&(t, _)| t != e.dst);
            let slot = in_changed.get_mut(&e.dst).expect("touched above");
            slot.retain(|&(t, _)| t != e.src);
        }
        for e in batch.additions() {
            out_changed
                .get_mut(&e.src)
                .expect("touched above")
                .push((e.dst, e.weight));
            in_changed
                .get_mut(&e.dst)
                .expect("touched above")
                .push((e.src, e.weight));
        }

        // Pass 2: rebuild both indexes, copying unchanged slices.
        let out = self.out.rebuild_with(new_n, &out_changed);
        let inc = self.inc.rebuild_with(new_n, &in_changed);
        Ok(GraphSnapshot::from_parts(out, inc, self.version + 1))
    }

    /// Convenience wrapper returning an `Arc`'d mutated snapshot.
    pub fn apply_arc(&self, batch: &MutationBatch) -> Result<Arc<GraphSnapshot>, MutationError> {
        self.apply(batch).map(Arc::new)
    }

    /// Estimated heap footprint of both indexes, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.out.memory_bytes() + self.inc.memory_bytes()
    }

    /// Checks internal consistency: CSR and CSC describe the same edge
    /// set. Intended for tests and debug assertions.
    pub fn check_consistency(&self) -> bool {
        if self.out.num_edges() != self.inc.num_edges() {
            return false;
        }
        let mut fwd = self.out.to_edges();
        let mut bwd: Vec<Edge> = self
            .inc
            .to_edges()
            .into_iter()
            .map(|e| e.reversed())
            .collect();
        fwd.sort();
        bwd.sort();
        fwd == bwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> GraphSnapshot {
        GraphSnapshot::from_edges(
            4,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(1, 3, 3.0),
                Edge::new(2, 3, 4.0),
            ],
        )
    }

    #[test]
    fn csr_and_csc_agree() {
        let g = diamond();
        assert!(g.check_consistency());
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = GraphSnapshot::from_edges(2, &[Edge::new(0, 1, 1.0), Edge::new(0, 1, 7.0)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(7.0));
    }

    #[test]
    fn in_weight_sum_matches_incoming_edges() {
        let g = diamond();
        assert_eq!(g.in_weight_sum(3), 7.0);
        assert_eq!(g.in_weight_sum(1), 1.0);
    }

    #[test]
    fn apply_addition_and_deletion() {
        let g = diamond();
        let mut batch = MutationBatch::new();
        batch.add(Edge::new(3, 0, 9.0));
        batch.delete(Edge::unweighted(0, 1));
        let g2 = g.apply(&batch).unwrap();
        assert!(g2.check_consistency());
        assert_eq!(g2.num_edges(), 4);
        assert!(g2.has_edge(3, 0));
        assert!(!g2.has_edge(0, 1));
        assert_eq!(g2.version(), 1);
        // The old snapshot is untouched.
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn apply_grows_vertex_space() {
        let g = diamond();
        let mut batch = MutationBatch::new();
        batch.add(Edge::unweighted(3, 6));
        let g2 = g.apply(&batch).unwrap();
        assert_eq!(g2.num_vertices(), 7);
        assert!(g2.has_edge(3, 6));
        assert_eq!(g2.out_degree(5), 0);
        assert!(g2.check_consistency());
    }

    #[test]
    fn apply_rejects_duplicate_addition() {
        let g = diamond();
        let mut batch = MutationBatch::new();
        batch.add(Edge::unweighted(0, 1));
        assert!(matches!(
            g.apply(&batch),
            Err(MutationError::DuplicateAddition(_))
        ));
    }

    #[test]
    fn apply_rejects_missing_deletion() {
        let g = diamond();
        let mut batch = MutationBatch::new();
        batch.delete(Edge::unweighted(1, 0));
        assert!(matches!(
            g.apply(&batch),
            Err(MutationError::MissingDeletion(_))
        ));
    }

    #[test]
    fn sequential_batches_bump_version() {
        let g = diamond();
        let mut b1 = MutationBatch::new();
        b1.add(Edge::unweighted(1, 0));
        let g1 = g.apply(&b1).unwrap();
        let mut b2 = MutationBatch::new();
        b2.delete(Edge::unweighted(1, 0));
        let g2 = g1.apply(&b2).unwrap();
        assert_eq!(g2.version(), 2);
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
