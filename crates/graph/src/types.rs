//! Fundamental identifier and edge types shared across the workspace.

use serde::{Deserialize, Serialize};

/// Identifier of a vertex.
///
/// `u32` comfortably addresses the billion-vertex range used in the paper's
/// evaluation while halving index memory relative to `usize` on 64-bit
/// machines, which matters because the dependency store keeps per-vertex
/// per-iteration state.
pub type VertexId = u32;

/// Edge weight. All algorithms in the paper use real-valued weights
/// (ratings for collaborative filtering, affinities for label propagation).
pub type Weight = f64;

/// A directed, weighted edge `(src → dst, weight)`.
///
/// Equality and hashing consider only the endpoints, not the weight: a
/// mutation that deletes `(u, v)` removes the edge regardless of its
/// weight, matching the paper's edge-mutation semantics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Weight carried on the edge.
    pub weight: Weight,
}

impl Edge {
    /// Creates a new directed edge.
    ///
    /// # Examples
    ///
    /// ```
    /// use graphbolt_graph::Edge;
    /// let e = Edge::new(3, 7, 0.5);
    /// assert_eq!((e.src, e.dst), (3, 7));
    /// ```
    #[inline]
    pub fn new(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Self { src, dst, weight }
    }

    /// Creates an edge with the default weight `1.0`.
    #[inline]
    pub fn unweighted(src: VertexId, dst: VertexId) -> Self {
        Self::new(src, dst, 1.0)
    }

    /// Returns the edge with endpoints swapped (used to mirror a CSR edge
    /// into the CSC index).
    #[inline]
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }

    /// Returns the `(src, dst)` endpoint pair.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.src, self.dst)
    }
}

impl PartialEq for Edge {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.dst == other.dst
    }
}

impl Eq for Edge {}

impl std::hash::Hash for Edge {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.src.hash(state);
        self.dst.hash(state);
    }
}

impl PartialOrd for Edge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Edge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.src, self.dst).cmp(&(other.src, other.dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn edge_equality_ignores_weight() {
        assert_eq!(Edge::new(1, 2, 0.5), Edge::new(1, 2, 9.0));
        assert_ne!(Edge::new(1, 2, 0.5), Edge::new(2, 1, 0.5));
    }

    #[test]
    fn edge_hash_consistent_with_eq() {
        let mut set = HashSet::new();
        set.insert(Edge::new(1, 2, 0.5));
        assert!(set.contains(&Edge::new(1, 2, 123.0)));
        assert!(!set.contains(&Edge::new(2, 1, 0.5)));
    }

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::new(4, 9, 2.5);
        let r = e.reversed();
        assert_eq!((r.src, r.dst), (9, 4));
        assert_eq!(r.weight, 2.5);
    }

    #[test]
    fn edge_ordering_is_lexicographic_on_endpoints() {
        let mut edges = [
            Edge::new(2, 0, 1.0),
            Edge::new(0, 5, 1.0),
            Edge::new(0, 1, 1.0),
        ];
        edges.sort();
        assert_eq!(edges[0].endpoints(), (0, 1));
        assert_eq!(edges[1].endpoints(), (0, 5));
        assert_eq!(edges[2].endpoints(), (2, 0));
    }
}
