//! Structural statistics of graph snapshots.
//!
//! Used by the harness to characterize generated inputs (the evaluation's
//! claims hinge on degree skew and stabilization, both functions of
//! structure) and by downstream users for quick dataset summaries.

use crate::snapshot::GraphSnapshot;
use crate::types::VertexId;

/// Summary statistics of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Vertices with no incident edges at all.
    pub isolated: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean out-degree over all vertices.
    pub mean_degree: f64,
    /// Share of all edges held by the top 1% of vertices by out-degree
    /// (≥ ~0.01 for uniform graphs; ≫ 0.01 for skewed ones).
    pub top1pct_share: f64,
}

/// Computes summary statistics.
pub fn stats(g: &GraphSnapshot) -> GraphStats {
    let n = g.num_vertices();
    let mut out: Vec<usize> = (0..n as VertexId).map(|v| g.out_degree(v)).collect();
    let isolated = (0..n as VertexId)
        .filter(|&v| g.out_degree(v) == 0 && g.in_degree(v) == 0)
        .count();
    let max_out = out.iter().copied().max().unwrap_or(0);
    let max_in = (0..n as VertexId)
        .map(|v| g.in_degree(v))
        .max()
        .unwrap_or(0);
    out.sort_unstable_by(|a, b| b.cmp(a));
    let top = (n / 100).max(1);
    let top_sum: usize = out.iter().take(top).sum();
    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        isolated,
        max_out_degree: max_out,
        max_in_degree: max_in,
        mean_degree: if n == 0 {
            0.0
        } else {
            g.num_edges() as f64 / n as f64
        },
        top1pct_share: if g.num_edges() == 0 {
            0.0
        } else {
            top_sum as f64 / g.num_edges() as f64
        },
    }
}

/// Out-degree histogram with logarithmic buckets `[2^i, 2^{i+1})`;
/// index 0 counts degree-0 vertices.
pub fn degree_histogram(g: &GraphSnapshot) -> Vec<usize> {
    let mut buckets = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.out_degree(v);
        let b = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Approximate (hop) diameter by the double-sweep heuristic: BFS from
/// `start`, then BFS again from the farthest vertex found. The result is
/// a lower bound on the true diameter, usually tight on real graphs —
/// use it to size iteration budgets (`iterations ≥ diameter` for exact
/// path algorithms).
pub fn approximate_diameter(g: &GraphSnapshot, start: VertexId) -> usize {
    let (far, _) = bfs_farthest(g, start);
    let (_, depth) = bfs_farthest(g, far);
    depth
}

/// BFS over out-edges; returns the farthest reached vertex and its hop
/// distance.
fn bfs_farthest(g: &GraphSnapshot, start: VertexId) -> (VertexId, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (start, 0);
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let (mut far, mut depth) = (start, 0);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                if du + 1 > depth {
                    depth = du + 1;
                    far = v;
                }
                queue.push_back(v);
            }
        }
    }
    (far, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::rmat::{rmat, RmatConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn stats_on_small_graph() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(1, 2, 1.0)
            .build();
        let s = stats(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.mean_degree - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rmat_shows_skew_in_stats() {
        let mut rng = SmallRng::seed_from_u64(3);
        let edges = rmat(&RmatConfig::new(10, 8), &mut rng);
        let n = crate::generators::vertex_count(&edges);
        let g = GraphSnapshot::from_edges(n, &edges);
        let s = stats(&g);
        assert!(
            s.top1pct_share > 0.05,
            "R-MAT top-1% share {} not skewed",
            s.top1pct_share
        );
    }

    #[test]
    fn histogram_buckets_by_log_degree() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(0, 3, 1.0)
            .add_edge(1, 0, 1.0)
            .build();
        let h = degree_histogram(&g);
        // Vertex 0: degree 3 → bucket 2; vertex 1: degree 1 → bucket 1;
        // vertices 2, 3: degree 0 → bucket 0.
        assert_eq!(h, vec![2, 1, 1]);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = GraphSnapshot::empty(0);
        let s = stats(&g);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.top1pct_share, 0.0);
    }
}

#[cfg(test)]
mod diameter_tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_graph_diameter() {
        let mut b = GraphBuilder::new(6).symmetric(true);
        for i in 0..5u32 {
            b = b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        assert_eq!(approximate_diameter(&g, 2), 5);
    }

    #[test]
    fn star_graph_diameter() {
        let mut b = GraphBuilder::new(8).symmetric(true);
        for i in 1..8u32 {
            b = b.add_edge(0, i, 1.0);
        }
        let g = b.build();
        assert_eq!(approximate_diameter(&g, 0), 2);
    }

    #[test]
    fn disconnected_start_sees_its_component_only() {
        let g = GraphBuilder::new(4)
            .symmetric(true)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        assert_eq!(approximate_diameter(&g, 0), 1);
    }
}
