//! Watts–Strogatz small-world generator and regular grids.

use rand::Rng;

use super::randomize_weights;
use crate::types::{Edge, VertexId};

/// Generates a directed Watts–Strogatz small-world graph: a ring lattice
/// where every vertex connects to its `k` clockwise neighbors, with each
/// edge's target rewired uniformly at random with probability `beta`.
///
/// Small-world graphs have high clustering and short paths — a contrast
/// case to R-MAT's skew for locality-sensitivity experiments.
///
/// # Panics
///
/// Panics if `k >= n` or `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng>(
    n: usize,
    k: usize,
    beta: f64,
    weighted: bool,
    rng: &mut R,
) -> Vec<Edge> {
    assert!(n > k, "need more vertices than lattice degree");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut edges = Vec::with_capacity(n * k);
    let mut present = std::collections::HashSet::with_capacity(n * k);
    for v in 0..n {
        for j in 1..=k {
            let mut t = (v + j) % n;
            if rng.gen_bool(beta) {
                // Rewire, avoiding self-loops and duplicates.
                for _ in 0..8 {
                    let cand = rng.gen_range(0..n);
                    if cand != v && !present.contains(&(v, cand)) {
                        t = cand;
                        break;
                    }
                }
            }
            if t != v && present.insert((v, t)) {
                edges.push(Edge::unweighted(v as VertexId, t as VertexId));
            }
        }
    }
    if weighted {
        randomize_weights(&mut edges, rng);
    }
    edges
}

/// Generates a `rows × cols` 4-neighbor grid (symmetric edges) — the
/// mesh/road-network-style contrast case: no skew, large diameter.
pub fn grid(rows: usize, cols: usize, weighted: bool, seed: u64) -> Vec<Edge> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(rows * cols * 4);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::unweighted(idx(r, c), idx(r, c + 1)));
                edges.push(Edge::unweighted(idx(r, c + 1), idx(r, c)));
            }
            if r + 1 < rows {
                edges.push(Edge::unweighted(idx(r, c), idx(r + 1, c)));
                edges.push(Edge::unweighted(idx(r + 1, c), idx(r, c)));
            }
        }
    }
    if weighted {
        randomize_weights(&mut edges, &mut rng);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lattice_without_rewiring_is_regular() {
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = watts_strogatz(20, 3, 0.0, false, &mut rng);
        assert_eq!(edges.len(), 60);
        let mut deg = [0usize; 20];
        for e in &edges {
            deg[e.src as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 3));
    }

    #[test]
    fn rewiring_keeps_graph_simple() {
        let mut rng = SmallRng::seed_from_u64(2);
        let edges = watts_strogatz(50, 4, 0.5, true, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn grid_has_expected_edge_count() {
        let edges = grid(3, 4, false, 0);
        // Horizontal: 3 rows × 3 gaps × 2 dirs; vertical: 2 × 4 × 2.
        assert_eq!(edges.len(), 18 + 16);
    }

    #[test]
    fn grid_connects_neighbors_only() {
        let edges = grid(3, 3, false, 0);
        for e in &edges {
            let (r1, c1) = (e.src / 3, e.src % 3);
            let (r2, c2) = (e.dst / 3, e.dst % 3);
            let dist = (r1 as i32 - r2 as i32).abs() + (c1 as i32 - c2 as i32).abs();
            assert_eq!(dist, 1, "edge {e:?} is not a grid neighbor");
        }
    }
}
