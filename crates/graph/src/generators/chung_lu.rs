//! Chung–Lu power-law graph generator.

use rand::Rng;

use super::{randomize_weights, simplify};
use crate::types::{Edge, VertexId};

/// Generates a simple directed graph whose expected degree sequence
/// follows a power law with the given exponent (typically 2.0–3.0 for
/// social/web graphs).
///
/// Vertices are assigned target weights `w_i = (i + 1)^(-1/(exponent-1))`
/// (normalized); `m` edges are sampled with endpoint probability
/// proportional to weight, then simplified. Smaller exponents give heavier
/// tails.
pub fn chung_lu<R: Rng>(
    n: usize,
    m: usize,
    exponent: f64,
    weighted: bool,
    rng: &mut R,
) -> Vec<Edge> {
    assert!(n >= 2, "need at least two vertices");
    assert!(exponent > 1.0, "power-law exponent must exceed 1");
    let gamma = -1.0 / (exponent - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(gamma)).collect();
    // Cumulative distribution for inverse-transform sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut R| -> VertexId {
        let x = rng.gen_range(0.0..total);
        cdf.partition_point(|&c| c <= x) as VertexId
    };
    let mut edges = Vec::with_capacity(m + m / 4 + 16);
    let mut oversample = m + m / 4 + 16;
    loop {
        edges.clear();
        for _ in 0..oversample {
            edges.push(Edge::unweighted(sample(rng), sample(rng)));
        }
        edges = simplify(std::mem::take(&mut edges));
        if edges.len() >= m {
            break;
        }
        oversample *= 2;
    }
    edges.truncate(m);
    if weighted {
        randomize_weights(&mut edges, rng);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chung_lu_produces_requested_edges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = chung_lu(500, 2000, 2.2, false, &mut rng);
        assert_eq!(edges.len(), 2000);
        assert!(edges.iter().all(|e| e.src < 500 && e.dst < 500));
    }

    #[test]
    fn chung_lu_low_ids_have_higher_degree() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 1000;
        let edges = chung_lu(n, 8000, 2.1, false, &mut rng);
        let mut deg = vec![0usize; n];
        for e in &edges {
            deg[e.src as usize] += 1;
            deg[e.dst as usize] += 1;
        }
        let head: usize = deg[..n / 10].iter().sum();
        let tail: usize = deg[9 * n / 10..].iter().sum();
        assert!(head > 3 * tail, "head {head} should dominate tail {tail}");
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn chung_lu_rejects_invalid_exponent() {
        let mut rng = SmallRng::seed_from_u64(3);
        chung_lu(10, 5, 0.5, false, &mut rng);
    }
}
