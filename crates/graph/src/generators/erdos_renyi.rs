//! Erdős–Rényi `G(n, m)` generator — the non-skewed control input.

use rand::Rng;

use super::{randomize_weights, simplify};
use crate::types::{Edge, VertexId};

/// Generates a simple directed `G(n, m)` graph with `m` distinct edges
/// sampled uniformly (self-loops excluded). Weights are uniform in
/// `(0, 1]` when `weighted` is set.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible simple directed edges
/// `n * (n - 1)`.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, weighted: bool, rng: &mut R) -> Vec<Edge> {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        m <= n * (n - 1),
        "requested {m} edges but only {} possible",
        n * (n - 1)
    );
    // Rejection-sample; for the densities used in benchmarks (m << n^2)
    // collisions are rare so a small oversampling factor suffices. The
    // factor doubles on each retry so dense requests also terminate.
    let mut oversample = m + m / 4 + 16;
    let mut edges;
    loop {
        let mut sampled = Vec::with_capacity(oversample);
        for _ in 0..oversample {
            let src = rng.gen_range(0..n) as VertexId;
            let dst = rng.gen_range(0..n) as VertexId;
            sampled.push(Edge::unweighted(src, dst));
        }
        edges = simplify(sampled);
        if edges.len() >= m {
            break;
        }
        oversample *= 2;
    }
    edges.truncate(m);
    if weighted {
        randomize_weights(&mut edges, rng);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(5);
        let edges = erdos_renyi(100, 500, false, &mut rng);
        assert_eq!(edges.len(), 500);
        let mut seen = std::collections::HashSet::new();
        assert!(edges.iter().all(|e| seen.insert((e.src, e.dst))));
        assert!(edges.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn erdos_renyi_weighted_assigns_weights() {
        let mut rng = SmallRng::seed_from_u64(5);
        let edges = erdos_renyi(50, 100, true, &mut rng);
        assert!(edges.iter().all(|e| e.weight > 0.0 && e.weight <= 1.0));
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn erdos_renyi_rejects_impossible_density() {
        let mut rng = SmallRng::seed_from_u64(5);
        erdos_renyi(3, 100, false, &mut rng);
    }

    #[test]
    fn erdos_renyi_small_dense_case_terminates() {
        let mut rng = SmallRng::seed_from_u64(9);
        let edges = erdos_renyi(4, 12, false, &mut rng);
        assert_eq!(edges.len(), 12);
    }
}
