//! R-MAT (recursive matrix) graph generator.

use rand::Rng;

use super::{randomize_weights, shuffle_labels, simplify};
use crate::types::{Edge, VertexId};

/// Parameters of the R-MAT recursive partitioning.
///
/// The defaults `(a, b, c) = (0.57, 0.19, 0.19)` are the standard
/// "social network" setting (Graph500) producing a heavily skewed degree
/// distribution comparable to the paper's web/social inputs.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Relabel vertices randomly so id does not correlate with degree.
    pub shuffle: bool,
    /// Assign uniform random weights in `(0, 1]` instead of `1.0`.
    pub weighted: bool,
}

impl RmatConfig {
    /// Standard skewed configuration at the given scale.
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            shuffle: true,
            weighted: true,
        }
    }

    /// Number of vertices implied by `scale`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edge samples drawn (pre-deduplication).
    pub fn num_samples(&self) -> usize {
        self.num_vertices() * self.edge_factor
    }
}

/// Generates a simple directed R-MAT graph (no self-loops, no parallel
/// edges). Returns the edge list; pair with
/// [`GraphSnapshot::from_edges`](crate::GraphSnapshot::from_edges) or
/// stream it through [`MutationStream`](crate::MutationStream).
///
/// # Examples
///
/// ```
/// use graphbolt_graph::generators::{rmat, RmatConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
/// let edges = rmat(&RmatConfig::new(8, 8), &mut rng);
/// assert!(!edges.is_empty());
/// ```
pub fn rmat<R: Rng>(cfg: &RmatConfig, rng: &mut R) -> Vec<Edge> {
    assert!(
        cfg.a + cfg.b + cfg.c <= 1.0,
        "quadrant probabilities exceed 1"
    );
    let n = cfg.num_vertices();
    let mut edges = Vec::with_capacity(cfg.num_samples());
    for _ in 0..cfg.num_samples() {
        let (src, dst) = sample_cell(cfg, n, rng);
        edges.push(Edge::unweighted(src, dst));
    }
    let mut edges = simplify(edges);
    if cfg.shuffle {
        shuffle_labels(&mut edges, n, rng);
    }
    if cfg.weighted {
        randomize_weights(&mut edges, rng);
    }
    edges
}

fn sample_cell<R: Rng>(cfg: &RmatConfig, n: usize, rng: &mut R) -> (VertexId, VertexId) {
    let (mut r0, mut r1) = (0usize, n);
    let (mut c0, mut c1) = (0usize, n);
    while r1 - r0 > 1 {
        // Perturb quadrant probabilities slightly per level, as in the
        // original R-MAT paper, to avoid exactly self-similar artifacts.
        let noise = |p: f64, rng: &mut R| p * rng.gen_range(0.95..1.05);
        let a = noise(cfg.a, rng);
        let b = noise(cfg.b, rng);
        let c = noise(cfg.c, rng);
        let sum = a + b + c + (1.0 - cfg.a - cfg.b - cfg.c);
        let x = rng.gen_range(0.0..sum);
        let rm = (r0 + r1) / 2;
        let cm = (c0 + c1) / 2;
        if x < a {
            r1 = rm;
            c1 = cm;
        } else if x < a + b {
            r1 = rm;
            c0 = cm;
        } else if x < a + b + c {
            r0 = rm;
            c1 = cm;
        } else {
            r0 = rm;
            c0 = cm;
        }
    }
    (r0 as VertexId, c0 as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rmat_produces_simple_graph_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = RmatConfig::new(8, 8);
        let edges = rmat(&cfg, &mut rng);
        let n = cfg.num_vertices() as VertexId;
        assert!(edges.iter().all(|e| e.src < n && e.dst < n));
        assert!(edges.iter().all(|e| e.src != e.dst));
        let mut seen = std::collections::HashSet::new();
        assert!(edges.iter().all(|e| seen.insert((e.src, e.dst))));
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let cfg = RmatConfig::new(7, 4);
        let a = rmat(&cfg, &mut SmallRng::seed_from_u64(3));
        let b = rmat(&cfg, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut cfg = RmatConfig::new(10, 16);
        cfg.shuffle = false;
        let edges = rmat(&cfg, &mut rng);
        let mut deg = vec![0usize; cfg.num_vertices()];
        for e in &edges {
            deg[e.src as usize] += 1;
        }
        deg.sort_unstable_by(|x, y| y.cmp(x));
        let total: usize = deg.iter().sum();
        let top1pct: usize = deg.iter().take(cfg.num_vertices() / 100).sum();
        // In a skewed graph, the top 1% of vertices hold far more than 1%
        // of the edges (uniform would give ~1%).
        assert!(
            top1pct * 10 > total,
            "top-1% share {top1pct}/{total} not skewed"
        );
    }
}
