//! Synthetic graph generators.
//!
//! The paper evaluates on six real-world web/social graphs (Wiki,
//! UKDomain, Twitter, TwitterMPI, Friendster, Yahoo). Those datasets are
//! multi-billion-edge and unavailable here, so the harness substitutes
//! synthetic graphs whose *degree structure* drives the same engine
//! behaviours:
//!
//! * [`rmat()`] — recursive-matrix graphs with the standard skewed
//!   parameters; reproduces the heavy-tailed degree distribution that
//!   makes vertex values stabilize across iterations (Figure 4 of the
//!   paper), which is what pruning and incremental reuse exploit.
//! * [`chung_lu()`] — power-law graphs with a controllable exponent.
//! * [`erdos_renyi()`] — uniform random graphs, the non-skewed control.

pub mod chung_lu;
pub mod erdos_renyi;
pub mod rmat;
pub mod small_world;

pub use chung_lu::chung_lu;
pub use erdos_renyi::erdos_renyi;
pub use rmat::{rmat, RmatConfig};
pub use small_world::{grid, watts_strogatz};

use crate::types::{Edge, VertexId};
use rand::Rng;

/// Assigns uniform random weights in `(0, 1]` to a set of edges, in place.
/// Several algorithms (LP, CoEM, CF, SSSP) require weighted inputs.
pub fn randomize_weights<R: Rng>(edges: &mut [Edge], rng: &mut R) {
    for e in edges.iter_mut() {
        e.weight = rng.gen_range(0.05..=1.0);
    }
}

/// Deduplicates edges by endpoint pair, keeping the first occurrence,
/// and drops self-loops. Generators over-sample and then call this.
pub fn simplify(edges: Vec<Edge>) -> Vec<Edge> {
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    edges
        .into_iter()
        .filter(|e| e.src != e.dst && seen.insert((e.src, e.dst)))
        .collect()
}

/// Largest vertex id + 1 appearing in `edges` (0 when empty).
pub fn vertex_count(edges: &[Edge]) -> usize {
    edges
        .iter()
        .map(|e| e.src.max(e.dst) as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Relabels vertices with a random permutation so that vertex id carries
/// no structural information (R-MAT otherwise correlates id with degree).
pub fn shuffle_labels<R: Rng>(edges: &mut [Edge], n: usize, rng: &mut R) {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for e in edges.iter_mut() {
        e.src = perm[e.src as usize];
        e.dst = perm[e.dst as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn simplify_removes_self_loops_and_duplicates() {
        let edges = vec![
            Edge::unweighted(0, 0),
            Edge::unweighted(0, 1),
            Edge::new(0, 1, 5.0),
            Edge::unweighted(1, 0),
        ];
        let out = simplify(edges);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn randomize_weights_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut edges = vec![Edge::unweighted(0, 1); 100];
        randomize_weights(&mut edges, &mut rng);
        assert!(edges.iter().all(|e| e.weight > 0.0 && e.weight <= 1.0));
    }

    #[test]
    fn shuffle_labels_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut edges: Vec<Edge> = (0..9).map(|i| Edge::unweighted(i, (i + 1) % 10)).collect();
        shuffle_labels(&mut edges, 10, &mut rng);
        // Still a single cycle over 10 vertices: every vertex has
        // out-degree <= 1 and the edge count is preserved.
        assert_eq!(edges.len(), 9);
        assert!(edges.iter().all(|e| e.src < 10 && e.dst < 10));
        let distinct: std::collections::HashSet<_> = edges.iter().map(|e| e.src).collect();
        assert_eq!(distinct.len(), 9);
    }
}
