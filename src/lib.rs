//! GraphBolt — dependency-driven synchronous processing of streaming
//! graphs.
//!
//! This meta-crate re-exports the full public API of the workspace:
//!
//! * [`graph`] — streaming graph substrate (snapshots, mutations,
//!   generators, I/O),
//! * [`engine`] — Ligra-style BSP execution substrate,
//! * [`core`] — the GraphBolt incremental model: dependency tracking and
//!   dependency-driven refinement with BSP-semantics guarantees,
//! * [`algorithms`] — PageRank, Belief Propagation, Label Propagation,
//!   CoEM, Collaborative Filtering, Triangle Counting, SSSP,
//! * [`kickstarter`] — the KickStarter-style monotonic baseline,
//! * [`minidd`] — the miniature differential-dataflow baseline.
//!
//! # Quickstart
//!
//! ```
//! use graphbolt::prelude::*;
//!
//! // Build a small graph and run streaming PageRank over one mutation.
//! let g = GraphBuilder::new(4)
//!     .add_edge(0, 1, 1.0)
//!     .add_edge(1, 2, 1.0)
//!     .add_edge(2, 0, 1.0)
//!     .add_edge(2, 3, 1.0)
//!     .build();
//! let mut engine = StreamingEngine::new(g, PageRank::default(), EngineOptions::with_iterations(10));
//! engine.run_initial();
//!
//! let mut batch = MutationBatch::new();
//! batch.add(Edge::new(3, 0, 1.0));
//! engine.apply_batch(&batch).unwrap();
//!
//! let ranks = engine.values();
//! assert_eq!(ranks.len(), 4);
//! ```

pub use graphbolt_algorithms as algorithms;
pub use graphbolt_core as core;
pub use graphbolt_engine as engine;
pub use graphbolt_graph as graph;
pub use graphbolt_kickstarter as kickstarter;
pub use graphbolt_minidd as minidd;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use graphbolt_algorithms::{
        BeliefPropagation, CoEm, CollaborativeFiltering, ConnectedComponents, LabelPropagation,
        PageRank, ShortestPaths, ShortestPathsMultiset, TriangleCounter,
    };
    pub use graphbolt_core::{
        Algorithm, DegradeLevel, EngineOptions, ExecutionMode, SessionConfig, SessionError,
        SessionOutcome, StreamSession, StreamingEngine,
    };
    pub use graphbolt_graph::{
        Edge, GraphBuilder, GraphSnapshot, MutationBatch, MutationStream, StreamConfig, VertexId,
        Weight, WorkloadBias,
    };
}
